#include "proto/config_io.hpp"

#include <gtest/gtest.h>

namespace iofwd::proto {
namespace {

TEST(ConfigIo, EmptyConfigKeepsDefaults) {
  Config c;
  auto m = apply_machine_config(c, bgp::MachineConfig::intrepid());
  ASSERT_TRUE(m.is_ok());
  EXPECT_EQ(m.value().ion_cores, 4);
  EXPECT_EQ(m.value().cns_per_pset, 64);

  auto f = apply_forwarder_config(c, {});
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value().workers, 4);
  EXPECT_EQ(f.value().policy, QueuePolicy::fifo);
}

TEST(ConfigIo, OverridesMachineKnobs) {
  Config c;
  c.set_int("machine.num_psets", 4);
  c.set_int("machine.ion_cores", 8);
  c.set_double("machine.eth_mib_s", 2380.0);
  c.set_int("machine.tree_latency_ns", 5000);
  auto m = apply_machine_config(c, bgp::MachineConfig::intrepid());
  ASSERT_TRUE(m.is_ok());
  EXPECT_EQ(m.value().num_psets, 4);
  EXPECT_EQ(m.value().ion_cores, 8);
  EXPECT_DOUBLE_EQ(m.value().eth_mib_s, 2380.0);
  EXPECT_EQ(m.value().tree_latency_ns, 5000);
  // Untouched knobs survive.
  EXPECT_DOUBLE_EQ(m.value().tree_raw_mb_s, 850.0);
}

TEST(ConfigIo, RejectsInvalidMachine) {
  Config c;
  c.set_int("machine.ion_cores", 0);
  auto m = apply_machine_config(c, bgp::MachineConfig::intrepid());
  EXPECT_FALSE(m.is_ok());
  EXPECT_EQ(m.code(), Errc::invalid_argument);
}

TEST(ConfigIo, OverridesForwarderKnobs) {
  Config c;
  c.set_int("forwarder.workers", 8);
  c.set_int("forwarder.multiplex_depth", 16);
  c.set("forwarder.balanced_batches", "false");
  c.set_int("forwarder.bml_bytes", 1 << 20);
  c.set("forwarder.policy", "sjf");
  auto f = apply_forwarder_config(c, {});
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value().workers, 8);
  EXPECT_EQ(f.value().multiplex_depth, 16);
  EXPECT_FALSE(f.value().balanced_batches);
  EXPECT_EQ(f.value().bml_bytes, 1u << 20);
  EXPECT_EQ(f.value().policy, QueuePolicy::sjf);
}

TEST(ConfigIo, AllPoliciesParse) {
  for (const char* name : {"fifo", "sjf", "priority"}) {
    Config c;
    c.set("forwarder.policy", name);
    auto f = apply_forwarder_config(c, {});
    ASSERT_TRUE(f.is_ok()) << name;
    EXPECT_EQ(to_string(f.value().policy), name);
  }
}

TEST(ConfigIo, RejectsBadPolicyAndWorkers) {
  {
    Config c;
    c.set("forwarder.policy", "banana");
    EXPECT_FALSE(apply_forwarder_config(c, {}).is_ok());
  }
  {
    Config c;
    c.set_int("forwarder.workers", 0);
    EXPECT_FALSE(apply_forwarder_config(c, {}).is_ok());
  }
  {
    Config c;
    c.set_int("forwarder.bml_bytes", 0);
    EXPECT_FALSE(apply_forwarder_config(c, {}).is_ok());
  }
}

TEST(ConfigIo, EnvironmentOverridesWork) {
  // The paper's env-variable control path (Sec. IV).
  ::setenv("IOFWD_FORWARDER_WORKERS", "2", 1);
  Config c;
  auto f = apply_forwarder_config(c, {});
  ::unsetenv("IOFWD_FORWARDER_WORKERS");
  ASSERT_TRUE(f.is_ok());
  EXPECT_EQ(f.value().workers, 2);
}

}  // namespace
}  // namespace iofwd::proto
