#include "proto/sched_policy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "proto/types.hpp"

namespace iofwd::proto {
namespace {

struct FakeTask {
  int id = 0;
  std::uint64_t bytes = 0;
  SinkTarget sink;
};

sim::Proc<void> drain_queue(SimTaskQueue<FakeTask>& q, std::vector<int>& order) {
  while (true) {
    auto t = co_await q.pop();
    if (!t) break;
    order.push_back(t->id);
  }
}

std::vector<int> run_policy(QueuePolicy policy, const std::vector<FakeTask>& tasks) {
  sim::Engine eng;
  SimTaskQueue<FakeTask> q(eng, policy);
  for (const auto& t : tasks) q.push(t);
  std::vector<int> order;
  eng.spawn(drain_queue(q, order));
  q.close();
  eng.run();
  return order;
}

FakeTask task(int id, std::uint64_t bytes, int priority = 0) {
  FakeTask t;
  t.id = id;
  t.bytes = bytes;
  t.sink.priority = priority;
  return t;
}

TEST(SchedPolicy, FifoPreservesArrivalOrder) {
  const auto order = run_policy(QueuePolicy::fifo, {task(1, 100), task(2, 1), task(3, 50)});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedPolicy, SjfPicksSmallestFirst) {
  const auto order = run_policy(QueuePolicy::sjf, {task(1, 100), task(2, 1), task(3, 50)});
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(SchedPolicy, SjfTiesBreakByArrival) {
  const auto order = run_policy(QueuePolicy::sjf, {task(1, 10), task(2, 10), task(3, 10)});
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedPolicy, PriorityBeatsArrivalOrder) {
  const auto order = run_policy(
      QueuePolicy::priority,
      {task(1, 10, /*priority=*/0), task(2, 10, 2), task(3, 10, 1), task(4, 10, 2)});
  EXPECT_EQ(order, (std::vector<int>{2, 4, 3, 1}));  // FIFO within a level
}

TEST(SchedPolicy, PopBlocksUntilPush) {
  sim::Engine eng;
  SimTaskQueue<FakeTask> q(eng, QueuePolicy::fifo);
  std::vector<int> order;
  eng.spawn(drain_queue(q, order));
  eng.run();
  EXPECT_TRUE(order.empty());
  q.push(task(9, 1));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{9}));
  q.close();
  eng.run();
}

TEST(SchedPolicy, TryPopRespectsPolicy) {
  sim::Engine eng;
  SimTaskQueue<FakeTask> q(eng, QueuePolicy::sjf);
  q.push(task(1, 100));
  q.push(task(2, 5));
  auto t = q.try_pop();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->id, 2);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.try_pop()->id, 1);
  EXPECT_EQ(q.try_pop(), std::nullopt);
}

TEST(SchedPolicy, CloseDrainsQueuedTasksFirst) {
  sim::Engine eng;
  SimTaskQueue<FakeTask> q(eng, QueuePolicy::fifo);
  q.push(task(1, 1));
  q.push(task(2, 1));
  q.close();
  std::vector<int> order;
  eng.spawn(drain_queue(q, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedPolicy, ToStringNames) {
  EXPECT_EQ(to_string(QueuePolicy::fifo), "fifo");
  EXPECT_EQ(to_string(QueuePolicy::sjf), "sjf");
  EXPECT_EQ(to_string(QueuePolicy::priority), "priority");
}

}  // namespace
}  // namespace iofwd::proto
