#include "proto/bml.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace iofwd::proto {
namespace {

TEST(Bml, SizeClassIsPowerOfTwo) {
  // "the buffer management allocates buffers that are powers of 2 bytes"
  sim::Engine eng;
  Bml bml(eng, 1_MiB, 4096);
  EXPECT_EQ(bml.size_class(1), 4096u);      // min class
  EXPECT_EQ(bml.size_class(4096), 4096u);
  EXPECT_EQ(bml.size_class(4097), 8192u);
  EXPECT_EQ(bml.size_class(100000), 131072u);
  EXPECT_EQ(bml.size_class(131072), 131072u);
}

TEST(Bml, ZeroCapacityRejected) {
  sim::Engine eng;
  EXPECT_THROW(Bml(eng, 0), std::invalid_argument);
}

sim::Proc<void> acquire_and_hold(Bml& bml, std::uint64_t bytes, std::uint64_t& got,
                                 sim::Engine& eng, sim::SimTime hold) {
  got = co_await bml.acquire(bytes);
  co_await sim::Delay{eng, hold};
  bml.release(got);
}

TEST(Bml, AcquireReleaseAccounting) {
  sim::Engine eng;
  Bml bml(eng, 1_MiB);
  std::uint64_t got = 0;
  eng.spawn(acquire_and_hold(bml, 100000, got, eng, 10));
  eng.run();
  EXPECT_EQ(got, 131072u);
  EXPECT_EQ(bml.in_use(), 0u);
  EXPECT_EQ(bml.high_watermark(), 131072u);
}

TEST(Bml, TryAcquireNonBlocking) {
  sim::Engine eng;
  Bml bml(eng, 16384, 4096);
  EXPECT_EQ(bml.try_acquire(4096), 4096u);
  EXPECT_EQ(bml.try_acquire(8192), 8192u);
  EXPECT_EQ(bml.try_acquire(8192), 0u);  // only 4 KiB left
  EXPECT_EQ(bml.try_acquire(4096), 4096u);
  EXPECT_EQ(bml.in_use(), 16384u);
  bml.release(8192);
  EXPECT_EQ(bml.try_acquire(8192), 8192u);
}

TEST(Bml, OversizeTryAcquireFails) {
  sim::Engine eng;
  Bml bml(eng, 8192, 4096);
  EXPECT_EQ(bml.try_acquire(100000), 0u);
}

sim::Proc<void> blocked_acquirer(Bml& bml, std::uint64_t bytes, sim::SimTime& acquired_at,
                                 sim::Engine& eng) {
  const std::uint64_t cls = co_await bml.acquire(bytes);
  acquired_at = eng.now();
  bml.release(cls);
}

TEST(Bml, ExhaustionBlocksUntilRelease) {
  // "If there is insufficient memory to stage the data, the I/O operation is
  // blocked until a number of queued I/O operations complete" (Sec. IV).
  sim::Engine eng;
  Bml bml(eng, 8192, 4096);
  std::uint64_t first = 0;
  sim::SimTime when = -1;
  eng.spawn(acquire_and_hold(bml, 8192, first, eng, 100));  // holds all until t=100
  eng.spawn(blocked_acquirer(bml, 4096, when, eng));
  eng.run();
  EXPECT_EQ(when, 100);
  EXPECT_GE(bml.blocked_acquires(), 1u);
}

TEST(Bml, FifoUnderContention) {
  sim::Engine eng;
  Bml bml(eng, 4096, 4096);
  std::uint64_t hold = 0;
  sim::SimTime t1 = -1, t2 = -1;
  eng.spawn(acquire_and_hold(bml, 4096, hold, eng, 50));
  eng.spawn(blocked_acquirer(bml, 4096, t1, eng));
  eng.spawn(blocked_acquirer(bml, 4096, t2, eng));
  eng.run();
  EXPECT_EQ(t1, 50);
  EXPECT_GE(t2, t1);
}

class BmlSizeClasses : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BmlSizeClasses, ClassCoversRequestTightly) {
  sim::Engine eng;
  Bml bml(eng, 1ull << 40, 4096);
  const auto req = GetParam();
  const auto cls = bml.size_class(req);
  EXPECT_TRUE(is_pow2(cls));
  EXPECT_GE(cls, req);
  EXPECT_GE(cls, 4096u);
  if (req > 4096) EXPECT_LT(cls / 2, req);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BmlSizeClasses,
                         ::testing::Values(1u, 4095u, 4096u, 4097u, 65536u, 65537u, 1048576u,
                                           1048577u, 4194304u));

}  // namespace
}  // namespace iofwd::proto
