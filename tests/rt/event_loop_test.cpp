#include "rt/event_loop.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "rt/transport.hpp"

namespace iofwd::rt {
namespace {

std::vector<std::uint64_t> keys_of(const std::vector<Event>& ready) {
  std::vector<std::uint64_t> keys;
  keys.reserve(ready.size());
  for (const Event& ev : ready) keys.push_back(ev.key);
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(EventLoop, ConstructsValid) {
  EventLoop loop;
  EXPECT_TRUE(loop.valid());
}

TEST(EventLoop, WakeReturnsWithNoKeys) {
  EventLoop loop;
  std::vector<Event> ready;
  std::thread waker([&] { loop.wake(); });
  EXPECT_TRUE(loop.wait(ready));
  waker.join();
  EXPECT_TRUE(ready.empty());
}

TEST(EventLoop, CloseMakesWaitReturnFalse) {
  EventLoop loop;
  std::vector<Event> ready;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    loop.close();
  });
  EXPECT_FALSE(loop.wait(ready));
  closer.join();
  // Closed stays closed: an immediate re-wait must not block.
  EXPECT_FALSE(loop.wait(ready));
}

TEST(EventLoop, ReportsRegisteredKeyOnReadiness) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(loop.add(fds[0], 0x1234).is_ok());

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  std::vector<Event> ready;
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].key, 0x1234u);
  EXPECT_TRUE(ready[0].readable);
  EXPECT_FALSE(ready[0].writable);  // read-only registration

  loop.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, EdgeTriggeredFiresOncePerEdge) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(loop.add(fds[0], 7).is_ok());

  ASSERT_EQ(::write(fds[1], "a", 1), 1);
  std::vector<Event> ready;
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);

  // Without draining fds[0], no *new* edge exists: a bare wake() must come
  // back with no ready keys (this is the ET contract lanes rely on — they
  // drain to would_block before waiting again).
  ready.clear();
  loop.wake();
  ASSERT_TRUE(loop.wait(ready));
  EXPECT_TRUE(ready.empty());

  // A fresh write is a fresh edge.
  ASSERT_EQ(::write(fds[1], "b", 1), 1);
  ready.clear();
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].key, 7u);

  loop.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, MultipleFdsReportDistinctKeys) {
  EventLoop loop;
  int p1[2], p2[2];
  ASSERT_EQ(::pipe(p1), 0);
  ASSERT_EQ(::pipe(p2), 0);
  ASSERT_TRUE(loop.add(p1[0], 1).is_ok());
  ASSERT_TRUE(loop.add(p2[0], 2).is_ok());

  ASSERT_EQ(::write(p1[1], "x", 1), 1);
  ASSERT_EQ(::write(p2[1], "y", 1), 1);
  std::vector<Event> ready;
  while (ready.size() < 2) {
    ASSERT_TRUE(loop.wait(ready));
  }
  const auto keys = keys_of(ready);
  EXPECT_EQ(keys[0], 1u);
  EXPECT_EQ(keys[1], 2u);

  for (int* p : {p1, p2}) {
    loop.remove(p[0]);
    ::close(p[0]);
    ::close(p[1]);
  }
}

TEST(EventLoop, WatchesInProcReadinessFd) {
  // The shim a lane actually registers: an InProcPipe's eventfd.
  EventLoop loop;
  auto [a, b] = InProcTransport::make_pair(4096);
  ASSERT_TRUE(loop.add(b->read_readiness_fd(), 42).is_ok());

  ASSERT_TRUE(a->write_all("ping", 4).is_ok());
  std::vector<Event> ready;
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].key, 42u);

  // Drain to would_block, then a peer close must produce another edge.
  char buf[8];
  ASSERT_TRUE(b->read_some(buf, sizeof buf).is_ok());
  ASSERT_EQ(b->read_some(buf, sizeof buf).code(), Errc::would_block);
  a->close();
  ready.clear();
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].key, 42u);
  EXPECT_EQ(b->read_some(buf, sizeof buf).code(), Errc::shutdown);
}

// Write interest (DESIGN.md §15): a writable pipe registered read_write
// reports writable immediately — EPOLL_CTL_MOD/ADD re-evaluate readiness, so
// arming after a would_block cannot lose the edge.
TEST(EventLoop, WriteInterestReportsWritable) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(loop.add(fds[1], 9, Interest::write).is_ok());

  std::vector<Event> ready;
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].key, 9u);
  EXPECT_TRUE(ready[0].writable);
  EXPECT_FALSE(ready[0].readable);

  loop.remove(fds[1]);
  ::close(fds[0]);
  ::close(fds[1]);
}

// The send-path arming sequence: start read-only, hit would_block, widen to
// read_write with modify(), get EPOLLOUT once the reader drains, then narrow
// back to read-only without churn.
TEST(EventLoop, ModifyArmsAndDisarmsWriteInterest) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_EQ(::fcntl(fds[1], F_SETFL, O_NONBLOCK), 0);
  ASSERT_TRUE(loop.add(fds[1], 5).is_ok());  // read interest: never fires

  // Fill the pipe to force the writer to park.
  std::vector<char> chunk(64 * 1024, 'x');
  while (::write(fds[1], chunk.data(), chunk.size()) > 0) {
  }

  ASSERT_TRUE(loop.modify(fds[1], 5, Interest::read_write).is_ok());
  // Not writable yet: a bare wake returns empty (no spurious EPOLLOUT while
  // the pipe is full).
  std::vector<Event> ready;
  loop.wake();
  ASSERT_TRUE(loop.wait(ready));
  bool writable = false;
  for (const Event& ev : ready) writable = writable || ev.writable;

  // Drain the pipe: the kernel's buffer gains space -> EPOLLOUT edge.
  std::vector<char> sink(1 << 20);
  while (::read(fds[0], sink.data(), sink.size()) == static_cast<ssize_t>(sink.size())) {
  }
  while (!writable) {
    ready.clear();
    ASSERT_TRUE(loop.wait(ready));
    for (const Event& ev : ready) {
      if (ev.key == 5u && ev.writable) writable = true;
    }
  }

  // Narrow back to read interest; a bare wake must not report writable again.
  ASSERT_TRUE(loop.modify(fds[1], 5, Interest::read).is_ok());
  ready.clear();
  loop.wake();
  ASSERT_TRUE(loop.wait(ready));
  for (const Event& ev : ready) EXPECT_FALSE(ev.writable);

  loop.remove(fds[1]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, AddBadFdFails) {
  EventLoop loop;
  EXPECT_FALSE(loop.add(-1, 9).is_ok());
}

}  // namespace
}  // namespace iofwd::rt
