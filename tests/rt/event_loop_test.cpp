#include "rt/event_loop.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "rt/transport.hpp"

namespace iofwd::rt {
namespace {

TEST(EventLoop, ConstructsValid) {
  EventLoop loop;
  EXPECT_TRUE(loop.valid());
}

TEST(EventLoop, WakeReturnsWithNoKeys) {
  EventLoop loop;
  std::vector<std::uint64_t> ready;
  std::thread waker([&] { loop.wake(); });
  EXPECT_TRUE(loop.wait(ready));
  waker.join();
  EXPECT_TRUE(ready.empty());
}

TEST(EventLoop, CloseMakesWaitReturnFalse) {
  EventLoop loop;
  std::vector<std::uint64_t> ready;
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    loop.close();
  });
  EXPECT_FALSE(loop.wait(ready));
  closer.join();
  // Closed stays closed: an immediate re-wait must not block.
  EXPECT_FALSE(loop.wait(ready));
}

TEST(EventLoop, ReportsRegisteredKeyOnReadiness) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(loop.add(fds[0], 0x1234).is_ok());

  ASSERT_EQ(::write(fds[1], "x", 1), 1);
  std::vector<std::uint64_t> ready;
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 0x1234u);

  loop.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, EdgeTriggeredFiresOncePerEdge) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ASSERT_TRUE(loop.add(fds[0], 7).is_ok());

  ASSERT_EQ(::write(fds[1], "a", 1), 1);
  std::vector<std::uint64_t> ready;
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);

  // Without draining fds[0], no *new* edge exists: a bare wake() must come
  // back with no ready keys (this is the ET contract lanes rely on — they
  // drain to would_block before waiting again).
  ready.clear();
  loop.wake();
  ASSERT_TRUE(loop.wait(ready));
  EXPECT_TRUE(ready.empty());

  // A fresh write is a fresh edge.
  ASSERT_EQ(::write(fds[1], "b", 1), 1);
  ready.clear();
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 7u);

  loop.remove(fds[0]);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(EventLoop, MultipleFdsReportDistinctKeys) {
  EventLoop loop;
  int p1[2], p2[2];
  ASSERT_EQ(::pipe(p1), 0);
  ASSERT_EQ(::pipe(p2), 0);
  ASSERT_TRUE(loop.add(p1[0], 1).is_ok());
  ASSERT_TRUE(loop.add(p2[0], 2).is_ok());

  ASSERT_EQ(::write(p1[1], "x", 1), 1);
  ASSERT_EQ(::write(p2[1], "y", 1), 1);
  std::vector<std::uint64_t> ready;
  while (ready.size() < 2) {
    ASSERT_TRUE(loop.wait(ready));
  }
  std::sort(ready.begin(), ready.end());
  EXPECT_EQ(ready[0], 1u);
  EXPECT_EQ(ready[1], 2u);

  for (int* p : {p1, p2}) {
    loop.remove(p[0]);
    ::close(p[0]);
    ::close(p[1]);
  }
}

TEST(EventLoop, WatchesInProcReadinessFd) {
  // The shim a lane actually registers: an InProcPipe's eventfd.
  EventLoop loop;
  auto [a, b] = InProcTransport::make_pair(4096);
  ASSERT_TRUE(loop.add(b->readiness_fd(), 42).is_ok());

  ASSERT_TRUE(a->write_all("ping", 4).is_ok());
  std::vector<std::uint64_t> ready;
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 42u);

  // Drain to would_block, then a peer close must produce another edge.
  char buf[8];
  ASSERT_TRUE(b->read_some(buf, sizeof buf).is_ok());
  ASSERT_EQ(b->read_some(buf, sizeof buf).code(), Errc::would_block);
  a->close();
  ready.clear();
  ASSERT_TRUE(loop.wait(ready));
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0], 42u);
  EXPECT_EQ(b->read_some(buf, sizeof buf).code(), Errc::shutdown);
}

TEST(EventLoop, AddBadFdFails) {
  EventLoop loop;
  EXPECT_FALSE(loop.add(-1, 9).is_ok());
}

}  // namespace
}  // namespace iofwd::rt
