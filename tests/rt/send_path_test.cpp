// Send-side backpressure (DESIGN.md §15): the asynchronous reply path must
//
//   * park replies in the per-connection send queue when the peer's ring is
//     full, resume on the EPOLLOUT edge, and deliver every byte intact;
//   * bound queued reply memory at ServerConfig::send_queue_bytes and drop
//     only the stalled connection when a peer stops reading — releasing the
//     BML leases its queued replies were pinning;
//   * fall back to the pre-§15 blocking reply path for streams with no
//     write readiness fd;
//   * account the one remaining reply memcpy (fstat's 8-byte size) so the
//     bench's zero-copy gate has a counter to watch.
//
// The tests speak the wire protocol directly over raw in-proc pipes so they
// can pipeline requests without reaping replies — Client's roundtrip API
// would drain each reply immediately and never stress the queue.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/units.hpp"
#include "rt/server.hpp"
#include "rt/transport.hpp"
#include "rt/wire.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::rt {
namespace {

constexpr std::size_t kPipe = 4_KiB;  // tiny ring: replies overflow fast

// Raw protocol driver over one stream end.
struct Raw {
  std::unique_ptr<ByteStream> s;
  std::uint64_t next_seq = 1;

  // Fire one request frame without waiting for the reply.
  [[nodiscard]] bool send(FrameHeader req, std::span<const std::byte> payload = {}) {
    req.type = MsgType::request;
    req.seq = next_seq++;
    req.version = kProtoVersion;
    if (!payload.empty()) {
      req.payload_len = payload.size();
      req.stamp_payload_crc(payload);
    }
    std::byte buf[FrameHeader::kWireSize];
    req.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
    if (!s->write_all(buf, sizeof buf).is_ok()) return false;
    return payload.empty() || s->write_all(payload.data(), payload.size()).is_ok();
  }

  // Blocking-read the next reply header (+payload when one is announced).
  [[nodiscard]] bool recv(FrameHeader* hdr_out, std::vector<std::byte>* payload_out) {
    std::byte buf[FrameHeader::kWireSize];
    if (!s->read_exact(buf, sizeof buf).is_ok()) return false;
    auto hdr = FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(buf));
    if (!hdr.is_ok() || hdr.value().type != MsgType::reply) return false;
    if (hdr_out != nullptr) *hdr_out = hdr.value();
    if (hdr.value().payload_len > 0) {
      if (payload_out == nullptr) return false;
      payload_out->resize(hdr.value().payload_len);
      if (!s->read_exact(payload_out->data(), payload_out->size()).is_ok()) return false;
      if (!hdr.value().payload_crc_ok(*payload_out)) return false;
    }
    return true;
  }

  // Request/reply with an ok-status check: the setup ops.
  [[nodiscard]] bool roundtrip(FrameHeader req, std::span<const std::byte> payload = {},
                               FrameHeader* hdr_out = nullptr,
                               std::vector<std::byte>* payload_out = nullptr) {
    if (!send(req, payload)) return false;
    FrameHeader hdr;
    if (!recv(&hdr, payload_out)) return false;
    if (hdr_out != nullptr) *hdr_out = hdr;
    return hdr.status == 0;
  }

  [[nodiscard]] bool handshake(int fd, const std::string& path) {
    FrameHeader hello;
    hello.op = OpCode::hello;
    if (!roundtrip(hello)) return false;
    FrameHeader open;
    open.op = OpCode::open;
    open.fd = fd;
    return roundtrip(open, std::as_bytes(std::span(path.data(), path.size())));
  }
};

Raw dial(IonServer& server, std::size_t pipe_bytes = kPipe) {
  auto [s, c] = InProcTransport::make_pair(pipe_bytes);
  server.serve(std::move(s));
  return Raw{std::move(c)};
}

// Poll `pred` for up to 5 s — the counters are updated by lane/worker
// threads, so assertions on them need a grace window.
template <typename Pred>
bool eventually(Pred pred) {
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!pred()) {
    if (std::chrono::steady_clock::now() > deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

TEST(SendPath, SlowReaderParksRepliesThenDeliversAll) {
  ServerConfig cfg;
  cfg.exec = ExecModel::work_queue_async;
  IonServer server(std::make_unique<MemBackend>(), cfg);
  Raw conn = dial(server);
  ASSERT_TRUE(conn.handshake(1, "f"));

  const auto data = testsupport::pattern(16_KiB, 0x5e9d);
  FrameHeader wr;
  wr.op = OpCode::write;
  wr.fd = 1;
  ASSERT_TRUE(conn.roundtrip(wr, data));

  // Pipeline 16 reads without reaping: ~262 KiB of replies against a 4 KiB
  // ring. The requests themselves (16 x 56 B) fit the send ring, so this
  // never deadlocks; the *replies* must park in the send queue.
  constexpr int kReads = 16;
  for (int i = 0; i < kReads; ++i) {
    FrameHeader rd;
    rd.op = OpCode::read;
    rd.fd = 1;
    rd.payload_len = 16_KiB;  // requested length; no payload sent
    ASSERT_TRUE(conn.send(rd));
  }

  // The queue actually filled: replies were accepted faster than the stalled
  // reader drained them.
  ASSERT_TRUE(eventually([&] {
    const auto st = server.stats();
    return st.replies_enqueued > st.replies_sent;
  })) << "replies never parked in the send queue";

  // Now read everything: each drained ring fires the write-readiness edge
  // and the lane resumes the gather. Every reply must arrive whole, in
  // order, checksummed, and correct.
  for (int i = 0; i < kReads; ++i) {
    FrameHeader hdr;
    std::vector<std::byte> payload;
    ASSERT_TRUE(conn.recv(&hdr, &payload)) << "reply " << i << " lost";
    EXPECT_EQ(hdr.status, 0) << "reply " << i;
    EXPECT_EQ(payload, data) << "reply " << i << " corrupted";
  }

  ASSERT_TRUE(eventually([&] {
    const auto st = server.stats();
    return st.replies_sent == st.replies_enqueued;
  }));
  const auto st = server.stats();
  EXPECT_EQ(st.reply_queue_full, 0u);
  EXPECT_EQ(st.reply_peer_gone, 0u);

  server.stop();
  EXPECT_EQ(server.stats().bml_in_use, 0u) << "a parked reply leaked its lease";
}

TEST(SendPath, QueueFullDropsOnlyTheStalledConnection) {
  ServerConfig cfg;
  cfg.exec = ExecModel::work_queue_async;
  cfg.send_queue_bytes = 64_KiB;  // ~4 parked 16 KiB replies
  IonServer server(std::make_unique<MemBackend>(), cfg);

  Raw stalled = dial(server);
  ASSERT_TRUE(stalled.handshake(1, "stalled"));
  Raw healthy = dial(server);
  ASSERT_TRUE(healthy.handshake(2, "healthy"));

  const auto data = testsupport::pattern(16_KiB, 0xdead);
  FrameHeader wr;
  wr.op = OpCode::write;
  wr.fd = 1;
  ASSERT_TRUE(stalled.roundtrip(wr, data));

  // Demand far more reply bytes than ring + queue can hold, and never read.
  // A send may fail mid-blast: that is the drop itself landing before the
  // blast finishes (the server closed the stream under us).
  for (int i = 0; i < 12; ++i) {
    FrameHeader rd;
    rd.op = OpCode::read;
    rd.fd = 1;
    rd.payload_len = 16_KiB;
    if (!stalled.send(rd)) break;
  }
  ASSERT_TRUE(eventually([&] { return server.stats().reply_queue_full >= 1; }))
      << "the send-queue bound never tripped";

  // The stalled connection was dropped: its stream reads EOF once the
  // already-ringed bytes are drained.
  std::byte sink[1_KiB];
  Status st = Status::ok();
  while (st.is_ok()) st = stalled.s->read_exact(sink, sizeof sink);
  EXPECT_EQ(st.code(), Errc::shutdown);

  // The neighbor is untouched: full write/read service, correct bytes.
  FrameHeader wr2;
  wr2.op = OpCode::write;
  wr2.fd = 2;
  EXPECT_TRUE(healthy.roundtrip(wr2, data));
  FrameHeader rd2;
  rd2.op = OpCode::read;
  rd2.fd = 2;
  rd2.payload_len = 16_KiB;
  std::vector<std::byte> back;
  EXPECT_TRUE(healthy.roundtrip(rd2, {}, nullptr, &back));
  EXPECT_EQ(back, data);

  server.stop();
  const auto final_st = server.stats();
  EXPECT_EQ(final_st.bml_in_use, 0u) << "aborting the queue must release pinned leases";
  EXPECT_GE(final_st.reply_peer_gone, 1u) << "queued replies behind the drop were not accounted";
}

// A stream that hides its readiness fds: the server must serve it with a
// blocking receiver thread and the pre-§15 inline reply path.
class OpaqueStream final : public ByteStream {
 public:
  explicit OpaqueStream(std::unique_ptr<ByteStream> inner) : inner_(std::move(inner)) {}
  Status read_exact(void* buf, std::size_t n) override { return inner_->read_exact(buf, n); }
  Status write_all(const void* buf, std::size_t n) override { return inner_->write_all(buf, n); }
  void close() override { inner_->close(); }

 private:
  std::unique_ptr<ByteStream> inner_;
};

TEST(SendPath, NonPollableStreamFallsBackToBlockingReplies) {
  ServerConfig cfg;
  cfg.exec = ExecModel::work_queue_async;
  IonServer server(std::make_unique<MemBackend>(), cfg);

  auto [s, c] = InProcTransport::make_pair(64_KiB);
  server.serve(std::make_unique<OpaqueStream>(std::move(s)));
  Raw conn{std::move(c)};
  ASSERT_TRUE(conn.handshake(1, "f"));

  const auto data = testsupport::pattern(8_KiB, 0xfa11);
  FrameHeader wr;
  wr.op = OpCode::write;
  wr.fd = 1;
  ASSERT_TRUE(conn.roundtrip(wr, data));
  FrameHeader rd;
  rd.op = OpCode::read;
  rd.fd = 1;
  rd.payload_len = 8_KiB;
  std::vector<std::byte> back;
  ASSERT_TRUE(conn.roundtrip(rd, {}, nullptr, &back));
  EXPECT_EQ(back, data);

  const auto st = server.stats();
  EXPECT_GE(st.reply_sync_fallback, 4u) << "hello/open/write/read all reply synchronously here";
  EXPECT_EQ(st.replies_enqueued, 0u) << "nothing should touch the async queue";
  server.stop();
}

TEST(SendPath, FstatIsTheOnlyReplyCopy) {
  ServerConfig cfg;
  cfg.exec = ExecModel::work_queue_async;
  IonServer server(std::make_unique<MemBackend>(), cfg);
  Raw conn = dial(server, 64_KiB);
  ASSERT_TRUE(conn.handshake(1, "f"));

  const auto data = testsupport::pattern(16_KiB, 0xc0);
  FrameHeader wr;
  wr.op = OpCode::write;
  wr.fd = 1;
  ASSERT_TRUE(conn.roundtrip(wr, data));

  // A full read travels zero-copy: the counter must not move.
  FrameHeader rd;
  rd.op = OpCode::read;
  rd.fd = 1;
  rd.payload_len = 16_KiB;
  std::vector<std::byte> back;
  ASSERT_TRUE(conn.roundtrip(rd, {}, nullptr, &back));
  EXPECT_EQ(back, data);
  EXPECT_EQ(server.stats().reply_payload_copy_bytes, 0u);

  // fstat's 8-byte size payload lives on the worker's stack, so it is the
  // one reply that must be copied into the queue entry — and counted.
  FrameHeader fs;
  fs.op = OpCode::fstat;
  fs.fd = 1;
  FrameHeader hdr;
  std::vector<std::byte> size_payload;
  ASSERT_TRUE(conn.roundtrip(fs, {}, &hdr, &size_payload));
  ASSERT_EQ(size_payload.size(), 8u);
  std::uint64_t size = 0;
  std::memcpy(&size, size_payload.data(), 8);
  EXPECT_EQ(size, 16_KiB);
  EXPECT_EQ(server.stats().reply_payload_copy_bytes, 8u);
  server.stop();
}

// Whole-stack sanity under send-side pressure: many Client threads doing
// mixed ops over deliberately tiny rings, so read replies routinely overflow
// into the send queues while neighbors keep writing.
TEST(SendPath, ClusterSurvivesTinyPipesUnderConcurrency) {
  testsupport::ClusterOptions o;
  o.server.exec = ExecModel::work_queue_async;
  o.server.workers = 4;
  o.pipe_bytes = 8_KiB;
  o.clients = 8;
  testsupport::TestCluster tc(o);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int id = 0; id < 8; ++id) {
    threads.emplace_back([&, id] {
      auto& client = tc.client(static_cast<std::size_t>(id));
      const int fd = 10 + id;
      std::vector<std::byte> file;
      if (!client.open(fd, "t" + std::to_string(id)).is_ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 40; ++i) {
        const auto data = testsupport::pattern(6_KiB, static_cast<std::uint64_t>(id) * 100 +
                                                          static_cast<std::uint64_t>(i));
        if (!client.write(fd, file.size(), data).is_ok()) {
          ++failures;
          return;
        }
        file.insert(file.end(), data.begin(), data.end());
        // Read back a slice bigger than the ring: the reply must stream
        // through a parked queue.
        const std::uint64_t off = (file.size() > 12_KiB) ? file.size() - 12_KiB : 0;
        auto r = client.read(fd, off, file.size() - off);
        if (!r.is_ok() || !std::equal(r.value().begin(), r.value().end(),
                                      file.begin() + static_cast<std::ptrdiff_t>(off))) {
          ++failures;
          return;
        }
      }
      if (!client.fsync(fd).is_ok() || !client.close(fd).is_ok()) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);

  // Counters only after stop() has joined the lanes: a client can consume
  // its last reply a beat before the lane bumps replies_sent.
  tc.stop();
  const auto st = tc.server().stats();
  EXPECT_EQ(st.reply_queue_full, 0u) << "a live reader must never trip the queue bound";
  EXPECT_EQ(st.replies_sent, st.replies_enqueued);
  EXPECT_EQ(st.bml_in_use, 0u);
}

}  // namespace
}  // namespace iofwd::rt
