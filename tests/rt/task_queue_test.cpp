#include "rt/task_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

namespace iofwd::rt {
namespace {

TEST(TaskQueue, PushPopSingle) {
  TaskQueue<int> q(2);
  EXPECT_TRUE(q.push(7));
  auto batch = q.pop_batch(8);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 7);
}

TEST(TaskQueue, BatchRespectsMax) {
  TaskQueue<int> q(1);
  for (int i = 0; i < 20; ++i) q.push(i);
  auto batch = q.pop_batch(8, /*balanced=*/false);
  EXPECT_EQ(batch.size(), 8u);
  EXPECT_EQ(batch.front(), 0);
  EXPECT_EQ(batch.back(), 7);
}

TEST(TaskQueue, BalancedBatchSharesBacklog) {
  TaskQueue<int> q(/*workers_hint=*/4);
  for (int i = 0; i < 8; ++i) q.push(i);
  // Backlog 8 over 4 workers: a fair share is 2, not the full multiplex 8.
  auto batch = q.pop_batch(8, /*balanced=*/true);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(TaskQueue, FifoOrderAcrossBatches) {
  TaskQueue<int> q(1);
  for (int i = 0; i < 10; ++i) q.push(i);
  int expect = 0;
  while (expect < 10) {
    for (int v : q.pop_batch(3, false)) EXPECT_EQ(v, expect++);
  }
}

TEST(TaskQueue, CloseDrainsThenReturnsEmpty) {
  TaskQueue<int> q(1);
  q.push(1);
  q.push(2);
  q.close();
  EXPECT_FALSE(q.push(3));
  auto batch = q.pop_batch(8, false);
  EXPECT_EQ(batch.size(), 2u);
  EXPECT_TRUE(q.pop_batch(8).empty());
}

TEST(TaskQueue, CloseWakesBlockedConsumer) {
  TaskQueue<int> q(1);
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    auto batch = q.pop_batch(4);
    EXPECT_TRUE(batch.empty());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  consumer.join();
  EXPECT_TRUE(woke);
}

TEST(TaskQueue, TryPop) {
  TaskQueue<int> q(1);
  EXPECT_EQ(q.try_pop(), std::nullopt);
  q.push(5);
  EXPECT_EQ(q.try_pop(), 5);
}

TEST(TaskQueue, MpmcDeliversEachTaskExactlyOnce) {
  TaskQueue<int> q(4);
  constexpr int kTasks = 10000;
  std::mutex seen_mu;
  std::set<int> seen;
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      while (true) {
        auto batch = q.pop_batch(16);
        if (batch.empty()) return;
        std::scoped_lock lock(seen_mu);
        for (int v : batch) {
          EXPECT_TRUE(seen.insert(v).second) << "duplicate delivery of " << v;
        }
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p) {
    producers.emplace_back([&, p] {
      for (int i = p; i < kTasks; i += 2) q.push(i);
    });
  }
  for (auto& t : producers) t.join();
  while (q.size() > 0) std::this_thread::yield();
  q.close();
  for (auto& t : workers) t.join();
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(kTasks));
}

TEST(TaskQueue, StatsTrackDepthAndBatches) {
  TaskQueue<int> q(2);
  for (int i = 0; i < 5; ++i) q.push(i);
  EXPECT_EQ(q.max_depth(), 5u);
  EXPECT_EQ(q.pushed(), 5u);
  (void)q.pop_batch(8, false);
  EXPECT_EQ(q.batches(), 1u);
}

TEST(TaskQueue, ShutdownRaceNeverLosesAcceptedTasks) {
  // close() racing with concurrent push(): every task whose push() returned
  // true must still be delivered to some consumer, and none twice.
  constexpr int kRounds = 25;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  for (int round = 0; round < kRounds; ++round) {
    TaskQueue<int> q(3);
    std::atomic<bool> go{false};
    std::mutex mu;
    std::set<int> accepted;
    std::set<int> delivered;

    std::vector<std::thread> consumers;
    for (int c = 0; c < 3; ++c) {
      consumers.emplace_back([&] {
        while (true) {
          auto batch = q.pop_batch(8, /*balanced=*/false);
          if (batch.empty()) return;  // closed and drained
          std::scoped_lock lock(mu);
          for (int v : batch) EXPECT_TRUE(delivered.insert(v).second) << "duplicate " << v;
        }
      });
    }
    std::vector<std::thread> producers;
    for (int p = 0; p < kProducers; ++p) {
      producers.emplace_back([&, p] {
        while (!go.load()) std::this_thread::yield();
        for (int i = 0; i < kPerProducer; ++i) {
          const int v = p * kPerProducer + i;
          if (q.push(v)) {
            std::scoped_lock lock(mu);
            accepted.insert(v);
          }
        }
      });
    }
    std::thread closer([&] {
      while (!go.load()) std::this_thread::yield();
      // Land the close somewhere inside the producers' burst.
      std::this_thread::sleep_for(std::chrono::microseconds(50 * (round % 5)));
      q.close();
    });
    go = true;
    for (auto& t : producers) t.join();
    closer.join();
    for (auto& t : consumers) t.join();  // close must wake every waiter

    std::scoped_lock lock(mu);
    EXPECT_EQ(delivered, accepted) << "round " << round
                                   << ": accepted tasks lost or invented at shutdown";
  }
}

TEST(TaskQueue, CloseWakesAllBlockedConsumers) {
  TaskQueue<int> q(4);
  std::atomic<int> woke{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      EXPECT_TRUE(q.pop_batch(4).empty());
      ++woke;
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(woke.load(), 4);
}

TEST(TaskQueue, MoveOnlyTasks) {
  TaskQueue<std::unique_ptr<int>> q(1);
  q.push(std::make_unique<int>(3));
  auto batch = q.pop_batch(1);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(*batch[0], 3);
}

}  // namespace
}  // namespace iofwd::rt
