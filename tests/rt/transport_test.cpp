#include "rt/transport.hpp"

#include <gtest/gtest.h>

#include <poll.h>

#include <array>
#include <cstring>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace iofwd::rt {
namespace {

template <typename MakePair>
void round_trip_test(MakePair make) {
  auto [a, b] = make();
  const char msg[] = "hello forwarding";
  ASSERT_TRUE(a->write_all(msg, sizeof msg).is_ok());
  char got[sizeof msg];
  ASSERT_TRUE(b->read_exact(got, sizeof got).is_ok());
  EXPECT_STREQ(got, msg);
  // Reverse direction.
  ASSERT_TRUE(b->write_all("pong", 4).is_ok());
  char pong[4];
  ASSERT_TRUE(a->read_exact(pong, 4).is_ok());
  EXPECT_EQ(std::memcmp(pong, "pong", 4), 0);
}

template <typename MakePair>
void large_transfer_test(MakePair make) {
  auto [a, b] = make();
  // Bigger than the in-proc ring capacity: forces wraparound + blocking.
  std::vector<std::byte> data(3 * (1 << 20));
  Rng rng(42);
  for (auto& x : data) x = static_cast<std::byte>(rng.next());
  std::thread writer([&] { ASSERT_TRUE(a->write_all(data.data(), data.size()).is_ok()); });
  std::vector<std::byte> got(data.size());
  ASSERT_TRUE(b->read_exact(got.data(), got.size()).is_ok());
  writer.join();
  EXPECT_EQ(got, data);
}

template <typename MakePair>
void close_unblocks_reader_test(MakePair make) {
  auto [a, b] = make();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->close();
  });
  char buf[16];
  const Status st = b->read_exact(buf, sizeof buf);
  closer.join();
  EXPECT_EQ(st.code(), Errc::shutdown);
}

auto make_inproc = [] { return InProcTransport::make_pair(64 * 1024); };
auto make_sockets = [] {
  auto r = SocketTransport::make_socketpair();
  EXPECT_TRUE(r.is_ok());
  return std::move(r).value();
};

TEST(InProcTransport, RoundTrip) { round_trip_test(make_inproc); }
TEST(InProcTransport, LargeTransferWrapsRing) { large_transfer_test(make_inproc); }
TEST(InProcTransport, CloseUnblocksReader) { close_unblocks_reader_test(make_inproc); }

TEST(SocketTransport, RoundTrip) { round_trip_test(make_sockets); }
TEST(SocketTransport, LargeTransfer) { large_transfer_test(make_sockets); }
TEST(SocketTransport, CloseUnblocksReader) { close_unblocks_reader_test(make_sockets); }

TEST(InProcTransport, ManySmallMessagesInterleaved) {
  auto [a, b] = InProcTransport::make_pair(256);
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < 10000; ++i) {
      ASSERT_TRUE(a->write_all(&i, sizeof i).is_ok());
    }
  });
  for (std::uint32_t i = 0; i < 10000; ++i) {
    std::uint32_t v = 0;
    ASSERT_TRUE(b->read_exact(&v, sizeof v).is_ok());
    ASSERT_EQ(v, i);
  }
  producer.join();
}

// --------------------------------------------------------------------------
// Readiness API (epoll receiver lanes): read_readiness_fd + read_some.
// --------------------------------------------------------------------------

template <typename MakePair>
void read_some_drains_then_would_blocks(MakePair make) {
  auto [a, b] = make();
  ASSERT_TRUE(a->write_all("abcdef", 6).is_ok());
  char buf[16];
  // A ready stream hands over what it has, without blocking.
  auto r = b->read_some(buf, sizeof buf);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  ASSERT_EQ(r.value(), 6u);
  EXPECT_EQ(std::memcmp(buf, "abcdef", 6), 0);
  // Drained: the next read must report would_block, never block.
  r = b->read_some(buf, sizeof buf);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::would_block);
  // Peer close turns would_block into shutdown.
  a->close();
  r = b->read_some(buf, sizeof buf);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::shutdown);
}

TEST(InProcTransport, ReadSomeDrainsThenWouldBlocks) {
  read_some_drains_then_would_blocks(make_inproc);
}
TEST(SocketTransport, ReadSomeDrainsThenWouldBlocks) {
  read_some_drains_then_would_blocks(make_sockets);
}

TEST(InProcTransport, ReadinessFdSignalsOnWriteAndClose) {
  auto [a, b] = InProcTransport::make_pair(4096);
  const int rfd = b->read_readiness_fd();
  ASSERT_GE(rfd, 0);
  // Same fd on every call (lanes register it with epoll once).
  EXPECT_EQ(b->read_readiness_fd(), rfd);

  auto readable = [&](int timeout_ms) {
    pollfd p{rfd, POLLIN, 0};
    return ::poll(&p, 1, timeout_ms) == 1 && (p.revents & POLLIN) != 0;
  };
  EXPECT_FALSE(readable(0)) << "idle pipe must not be readable";
  ASSERT_TRUE(a->write_all("x", 1).is_ok());
  EXPECT_TRUE(readable(1000)) << "a buffered byte must signal readiness";

  char c = 0;
  auto r = b->read_some(&c, 1);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value(), 1u);
  EXPECT_EQ(c, 'x');
  // Drain-to-would_block rearms the eventfd for the next edge.
  EXPECT_EQ(b->read_some(&c, 1).code(), Errc::would_block);
  EXPECT_FALSE(readable(0)) << "drained pipe must clear readiness";

  a->close();
  EXPECT_TRUE(readable(1000)) << "peer close must signal readiness";
  EXPECT_EQ(b->read_some(&c, 1).code(), Errc::shutdown);
}

TEST(InProcTransport, ReadinessFdCreatedAfterBufferedBytesStillSignals) {
  // The eventfd is created lazily on first read_readiness_fd(); bytes
  // written before that must still produce an immediate edge, or an
  // edge-triggered lane would stall forever on a pre-loaded connection.
  auto [a, b] = InProcTransport::make_pair(4096);
  ASSERT_TRUE(a->write_all("pre", 3).is_ok());
  const int rfd = b->read_readiness_fd();
  ASSERT_GE(rfd, 0);
  pollfd p{rfd, POLLIN, 0};
  ASSERT_EQ(::poll(&p, 1, 1000), 1);
  EXPECT_TRUE(p.revents & POLLIN);
}

TEST(SocketTransport, ReadinessFdIsTheSocket) {
  auto [a, b] = make_sockets();
  EXPECT_GE(a->read_readiness_fd(), 0);
  EXPECT_GE(b->read_readiness_fd(), 0);
  // Sockets are full-duplex on one fd: write readiness is the same fd, so a
  // lane widens its existing registration with EPOLLOUT instead of adding a
  // second one.
  EXPECT_EQ(a->write_readiness_fd(), a->read_readiness_fd());
  EXPECT_EQ(b->write_readiness_fd(), b->read_readiness_fd());
}

// --------------------------------------------------------------------------
// Write-side API (async send path, DESIGN.md §15): write_some/writev_some +
// write_readiness_fd.
// --------------------------------------------------------------------------

TEST(InProcTransport, WriteSomeFillsRingThenWouldBlocks) {
  auto [a, b] = InProcTransport::make_pair(64);
  std::vector<std::byte> chunk(256, std::byte{0x5a});
  std::size_t accepted = 0;
  // Partial accept: a non-blocking send takes what fits and reports it.
  while (true) {
    auto r = a->write_some(chunk.data(), chunk.size());
    if (!r.is_ok()) {
      EXPECT_EQ(r.code(), Errc::would_block);
      break;
    }
    ASSERT_GT(r.value(), 0u);
    accepted += r.value();
  }
  EXPECT_EQ(accepted, 64u) << "ring capacity must be exactly consumable";

  // Reader drains; writer can proceed again.
  std::vector<std::byte> got(accepted);
  ASSERT_TRUE(b->read_exact(got.data(), got.size()).is_ok());
  auto r = a->write_some(chunk.data(), 8);
  ASSERT_TRUE(r.is_ok());
  EXPECT_GT(r.value(), 0u);
}

TEST(InProcTransport, WriteReadinessFdTicksWhenFullPipeDrains) {
  auto [a, b] = InProcTransport::make_pair(64);
  const int wfd = a->write_readiness_fd();
  ASSERT_GE(wfd, 0);
  EXPECT_NE(wfd, a->read_readiness_fd()) << "in-proc write shim is a distinct eventfd";

  auto ticked = [&](int timeout_ms) {
    pollfd p{wfd, POLLIN, 0};
    return ::poll(&p, 1, timeout_ms) == 1 && (p.revents & POLLIN) != 0;
  };
  // Space available now: the shim must be pre-signaled so a parked sender
  // cannot miss an edge that already happened.
  EXPECT_TRUE(ticked(1000));

  // Fill the ring; write_some's would_block drains stale ticks.
  std::vector<std::byte> chunk(64, std::byte{1});
  ASSERT_TRUE(a->write_some(chunk.data(), chunk.size()).is_ok());
  ASSERT_EQ(a->write_some(chunk.data(), 1).code(), Errc::would_block);
  EXPECT_FALSE(ticked(0)) << "full ring must not show write readiness";

  // full -> not-full transition ticks the shim.
  std::byte sink[16];
  ASSERT_TRUE(b->read_exact(sink, sizeof sink).is_ok());
  EXPECT_TRUE(ticked(1000)) << "draining a full ring must tick the write shim";

  // Refill the freed space so the ring is full again and the sender parks
  // (the trailing would_block drains any stale tick).
  while (a->write_some(chunk.data(), chunk.size()).is_ok()) {
  }
  EXPECT_FALSE(ticked(0));
  b->close();
  EXPECT_TRUE(ticked(1000)) << "peer close must tick the write shim";
  EXPECT_EQ(a->write_some(chunk.data(), 1).code(), Errc::shutdown);
}

template <typename MakePair>
void writev_some_gathers(MakePair make) {
  auto [a, b] = make();
  const std::array<std::byte, 4> h1{std::byte{'a'}, std::byte{'b'}, std::byte{'c'},
                                    std::byte{'d'}};
  const std::array<std::byte, 3> h2{std::byte{'e'}, std::byte{'f'}, std::byte{'g'}};
  const std::array<std::span<const std::byte>, 3> iov{
      std::span<const std::byte>(h1), std::span<const std::byte>{},  // empty span skipped
      std::span<const std::byte>(h2)};
  std::size_t sent = 0;
  while (sent < 7) {
    auto r = a->writev_some(std::span<const std::span<const std::byte>>(iov));
    ASSERT_TRUE(r.is_ok()) << r.status().to_string();
    // This test's spans always fit in one call for both transports.
    sent += r.value();
    ASSERT_EQ(sent, 7u);
  }
  char got[7];
  ASSERT_TRUE(b->read_exact(got, 7).is_ok());
  EXPECT_EQ(std::memcmp(got, "abcdefg", 7), 0);
}

TEST(InProcTransport, WritevSomeGathersSpans) { writev_some_gathers(make_inproc); }
TEST(SocketTransport, WritevSomeGathersSpans) { writev_some_gathers(make_sockets); }

TEST(SocketTransport, WriteSomeNeverBlocks) {
  auto [a, b] = make_sockets();
  // Stuff the socket until the kernel buffer is full: the call must report
  // would_block, not wedge the thread (sends use MSG_DONTWAIT even though
  // the fd stays blocking for write_all compatibility).
  std::vector<std::byte> chunk(256 * 1024, std::byte{7});
  while (true) {
    auto r = a->write_some(chunk.data(), chunk.size());
    if (!r.is_ok()) {
      EXPECT_EQ(r.code(), Errc::would_block);
      break;
    }
  }
  // Drain on the peer side until the sender recovers (unix sockets free
  // sender budget only as the receiver consumes skbs, so keep reading).
  std::vector<std::byte> sink(1 << 16);
  bool wrote = false;
  for (int i = 0; i < 1000 && !wrote; ++i) {
    ASSERT_TRUE(b->read_exact(sink.data(), 4096).is_ok());
    auto r = a->write_some(chunk.data(), 1);
    if (r.is_ok()) {
      wrote = true;
    } else {
      ASSERT_EQ(r.code(), Errc::would_block);
    }
  }
  EXPECT_TRUE(wrote);
}

TEST(UnixListener, AcceptAndEcho) {
  const std::string path = "/tmp/iofwd_test_" + std::to_string(::getpid()) + ".sock";
  auto listener = UnixListener::bind(path);
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();

  std::thread server([&] {
    auto conn = listener.value()->accept();
    ASSERT_TRUE(conn.is_ok());
    char buf[5];
    ASSERT_TRUE(conn.value()->read_exact(buf, 5).is_ok());
    ASSERT_TRUE(conn.value()->write_all(buf, 5).is_ok());
  });

  auto client = SocketTransport::connect_unix(path);
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  ASSERT_TRUE(client.value()->write_all("abcde", 5).is_ok());
  char got[5];
  ASSERT_TRUE(client.value()->read_exact(got, 5).is_ok());
  EXPECT_EQ(std::memcmp(got, "abcde", 5), 0);
  server.join();
}

TEST(UnixListener, ConnectToMissingPathFails) {
  auto r = SocketTransport::connect_unix("/tmp/iofwd_definitely_missing.sock");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::not_connected);
}

TEST(UnixListener, PathTooLongRejected) {
  const std::string long_path(300, 'x');
  EXPECT_FALSE(UnixListener::bind(long_path).is_ok());
  EXPECT_FALSE(SocketTransport::connect_unix(long_path).is_ok());
}

TEST(TcpListener, AcceptAndEchoOverLoopback) {
  auto listener = TcpListener::bind(0);  // ephemeral port
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  const std::uint16_t port = listener.value()->port();
  ASSERT_GT(port, 0);

  std::thread server([&] {
    auto conn = listener.value()->accept();
    ASSERT_TRUE(conn.is_ok());
    char buf[7];
    ASSERT_TRUE(conn.value()->read_exact(buf, 7).is_ok());
    ASSERT_TRUE(conn.value()->write_all(buf, 7).is_ok());
  });

  auto client = SocketTransport::connect_tcp("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  ASSERT_TRUE(client.value()->write_all("forward", 7).is_ok());
  char got[7];
  ASSERT_TRUE(client.value()->read_exact(got, 7).is_ok());
  EXPECT_EQ(std::memcmp(got, "forward", 7), 0);
  server.join();
}

TEST(TcpListener, ConnectToClosedPortFails) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const auto port = listener.value()->port();
  listener.value()->close();
  auto c = SocketTransport::connect_tcp("127.0.0.1", port);
  EXPECT_FALSE(c.is_ok());
}

TEST(TcpListener, BadBindAddressRejected) {
  EXPECT_FALSE(TcpListener::bind(0, "not-an-ip").is_ok());
}

TEST(TcpListener, ServerClientOverTcp) {
  // Full runtime stack over real TCP loopback.
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const auto port = listener.value()->port();

  IonServer server(std::make_unique<MemBackend>(), {});
  server.serve_listener(std::move(listener).value());

  auto stream = SocketTransport::connect_tcp("127.0.0.1", port);
  ASSERT_TRUE(stream.is_ok());
  Client client(std::move(stream).value());
  ASSERT_TRUE(client.open(1, "tcp_file").is_ok());
  std::vector<std::byte> data(256 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i * 7);
  ASSERT_TRUE(client.write(1, 0, data).is_ok());
  ASSERT_TRUE(client.fsync(1).is_ok());
  auto r = client.read(1, 0, data.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), data);
  ASSERT_TRUE(client.close(1).is_ok());
  server.stop();
}

}  // namespace
}  // namespace iofwd::rt
