#include "rt/transport.hpp"

#include <gtest/gtest.h>

#include <poll.h>

#include <cstring>
#include <thread>
#include <vector>

#include "core/rng.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace iofwd::rt {
namespace {

template <typename MakePair>
void round_trip_test(MakePair make) {
  auto [a, b] = make();
  const char msg[] = "hello forwarding";
  ASSERT_TRUE(a->write_all(msg, sizeof msg).is_ok());
  char got[sizeof msg];
  ASSERT_TRUE(b->read_exact(got, sizeof got).is_ok());
  EXPECT_STREQ(got, msg);
  // Reverse direction.
  ASSERT_TRUE(b->write_all("pong", 4).is_ok());
  char pong[4];
  ASSERT_TRUE(a->read_exact(pong, 4).is_ok());
  EXPECT_EQ(std::memcmp(pong, "pong", 4), 0);
}

template <typename MakePair>
void large_transfer_test(MakePair make) {
  auto [a, b] = make();
  // Bigger than the in-proc ring capacity: forces wraparound + blocking.
  std::vector<std::byte> data(3 * (1 << 20));
  Rng rng(42);
  for (auto& x : data) x = static_cast<std::byte>(rng.next());
  std::thread writer([&] { ASSERT_TRUE(a->write_all(data.data(), data.size()).is_ok()); });
  std::vector<std::byte> got(data.size());
  ASSERT_TRUE(b->read_exact(got.data(), got.size()).is_ok());
  writer.join();
  EXPECT_EQ(got, data);
}

template <typename MakePair>
void close_unblocks_reader_test(MakePair make) {
  auto [a, b] = make();
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    a->close();
  });
  char buf[16];
  const Status st = b->read_exact(buf, sizeof buf);
  closer.join();
  EXPECT_EQ(st.code(), Errc::shutdown);
}

auto make_inproc = [] { return InProcTransport::make_pair(64 * 1024); };
auto make_sockets = [] {
  auto r = SocketTransport::make_socketpair();
  EXPECT_TRUE(r.is_ok());
  return std::move(r).value();
};

TEST(InProcTransport, RoundTrip) { round_trip_test(make_inproc); }
TEST(InProcTransport, LargeTransferWrapsRing) { large_transfer_test(make_inproc); }
TEST(InProcTransport, CloseUnblocksReader) { close_unblocks_reader_test(make_inproc); }

TEST(SocketTransport, RoundTrip) { round_trip_test(make_sockets); }
TEST(SocketTransport, LargeTransfer) { large_transfer_test(make_sockets); }
TEST(SocketTransport, CloseUnblocksReader) { close_unblocks_reader_test(make_sockets); }

TEST(InProcTransport, ManySmallMessagesInterleaved) {
  auto [a, b] = InProcTransport::make_pair(256);
  std::thread producer([&] {
    for (std::uint32_t i = 0; i < 10000; ++i) {
      ASSERT_TRUE(a->write_all(&i, sizeof i).is_ok());
    }
  });
  for (std::uint32_t i = 0; i < 10000; ++i) {
    std::uint32_t v = 0;
    ASSERT_TRUE(b->read_exact(&v, sizeof v).is_ok());
    ASSERT_EQ(v, i);
  }
  producer.join();
}

// --------------------------------------------------------------------------
// Readiness API (epoll receiver lanes): readiness_fd + read_some.
// --------------------------------------------------------------------------

template <typename MakePair>
void read_some_drains_then_would_blocks(MakePair make) {
  auto [a, b] = make();
  ASSERT_TRUE(a->write_all("abcdef", 6).is_ok());
  char buf[16];
  // A ready stream hands over what it has, without blocking.
  auto r = b->read_some(buf, sizeof buf);
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  ASSERT_EQ(r.value(), 6u);
  EXPECT_EQ(std::memcmp(buf, "abcdef", 6), 0);
  // Drained: the next read must report would_block, never block.
  r = b->read_some(buf, sizeof buf);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::would_block);
  // Peer close turns would_block into shutdown.
  a->close();
  r = b->read_some(buf, sizeof buf);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::shutdown);
}

TEST(InProcTransport, ReadSomeDrainsThenWouldBlocks) {
  read_some_drains_then_would_blocks(make_inproc);
}
TEST(SocketTransport, ReadSomeDrainsThenWouldBlocks) {
  read_some_drains_then_would_blocks(make_sockets);
}

TEST(InProcTransport, ReadinessFdSignalsOnWriteAndClose) {
  auto [a, b] = InProcTransport::make_pair(4096);
  const int rfd = b->readiness_fd();
  ASSERT_GE(rfd, 0);
  // Same fd on every call (lanes register it with epoll once).
  EXPECT_EQ(b->readiness_fd(), rfd);

  auto readable = [&](int timeout_ms) {
    pollfd p{rfd, POLLIN, 0};
    return ::poll(&p, 1, timeout_ms) == 1 && (p.revents & POLLIN) != 0;
  };
  EXPECT_FALSE(readable(0)) << "idle pipe must not be readable";
  ASSERT_TRUE(a->write_all("x", 1).is_ok());
  EXPECT_TRUE(readable(1000)) << "a buffered byte must signal readiness";

  char c = 0;
  auto r = b->read_some(&c, 1);
  ASSERT_TRUE(r.is_ok());
  ASSERT_EQ(r.value(), 1u);
  EXPECT_EQ(c, 'x');
  // Drain-to-would_block rearms the eventfd for the next edge.
  EXPECT_EQ(b->read_some(&c, 1).code(), Errc::would_block);
  EXPECT_FALSE(readable(0)) << "drained pipe must clear readiness";

  a->close();
  EXPECT_TRUE(readable(1000)) << "peer close must signal readiness";
  EXPECT_EQ(b->read_some(&c, 1).code(), Errc::shutdown);
}

TEST(InProcTransport, ReadinessFdCreatedAfterBufferedBytesStillSignals) {
  // The eventfd is created lazily on first readiness_fd(); bytes written
  // before that must still produce an immediate edge, or an edge-triggered
  // lane would stall forever on a pre-loaded connection.
  auto [a, b] = InProcTransport::make_pair(4096);
  ASSERT_TRUE(a->write_all("pre", 3).is_ok());
  const int rfd = b->readiness_fd();
  ASSERT_GE(rfd, 0);
  pollfd p{rfd, POLLIN, 0};
  ASSERT_EQ(::poll(&p, 1, 1000), 1);
  EXPECT_TRUE(p.revents & POLLIN);
}

TEST(SocketTransport, ReadinessFdIsTheSocket) {
  auto [a, b] = make_sockets();
  EXPECT_GE(a->readiness_fd(), 0);
  EXPECT_GE(b->readiness_fd(), 0);
}

TEST(UnixListener, AcceptAndEcho) {
  const std::string path = "/tmp/iofwd_test_" + std::to_string(::getpid()) + ".sock";
  auto listener = UnixListener::bind(path);
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();

  std::thread server([&] {
    auto conn = listener.value()->accept();
    ASSERT_TRUE(conn.is_ok());
    char buf[5];
    ASSERT_TRUE(conn.value()->read_exact(buf, 5).is_ok());
    ASSERT_TRUE(conn.value()->write_all(buf, 5).is_ok());
  });

  auto client = SocketTransport::connect_unix(path);
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  ASSERT_TRUE(client.value()->write_all("abcde", 5).is_ok());
  char got[5];
  ASSERT_TRUE(client.value()->read_exact(got, 5).is_ok());
  EXPECT_EQ(std::memcmp(got, "abcde", 5), 0);
  server.join();
}

TEST(UnixListener, ConnectToMissingPathFails) {
  auto r = SocketTransport::connect_unix("/tmp/iofwd_definitely_missing.sock");
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::not_connected);
}

TEST(UnixListener, PathTooLongRejected) {
  const std::string long_path(300, 'x');
  EXPECT_FALSE(UnixListener::bind(long_path).is_ok());
  EXPECT_FALSE(SocketTransport::connect_unix(long_path).is_ok());
}

TEST(TcpListener, AcceptAndEchoOverLoopback) {
  auto listener = TcpListener::bind(0);  // ephemeral port
  ASSERT_TRUE(listener.is_ok()) << listener.status().to_string();
  const std::uint16_t port = listener.value()->port();
  ASSERT_GT(port, 0);

  std::thread server([&] {
    auto conn = listener.value()->accept();
    ASSERT_TRUE(conn.is_ok());
    char buf[7];
    ASSERT_TRUE(conn.value()->read_exact(buf, 7).is_ok());
    ASSERT_TRUE(conn.value()->write_all(buf, 7).is_ok());
  });

  auto client = SocketTransport::connect_tcp("127.0.0.1", port);
  ASSERT_TRUE(client.is_ok()) << client.status().to_string();
  ASSERT_TRUE(client.value()->write_all("forward", 7).is_ok());
  char got[7];
  ASSERT_TRUE(client.value()->read_exact(got, 7).is_ok());
  EXPECT_EQ(std::memcmp(got, "forward", 7), 0);
  server.join();
}

TEST(TcpListener, ConnectToClosedPortFails) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const auto port = listener.value()->port();
  listener.value()->close();
  auto c = SocketTransport::connect_tcp("127.0.0.1", port);
  EXPECT_FALSE(c.is_ok());
}

TEST(TcpListener, BadBindAddressRejected) {
  EXPECT_FALSE(TcpListener::bind(0, "not-an-ip").is_ok());
}

TEST(TcpListener, ServerClientOverTcp) {
  // Full runtime stack over real TCP loopback.
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.is_ok());
  const auto port = listener.value()->port();

  IonServer server(std::make_unique<MemBackend>(), {});
  server.serve_listener(std::move(listener).value());

  auto stream = SocketTransport::connect_tcp("127.0.0.1", port);
  ASSERT_TRUE(stream.is_ok());
  Client client(std::move(stream).value());
  ASSERT_TRUE(client.open(1, "tcp_file").is_ok());
  std::vector<std::byte> data(256 * 1024);
  for (std::size_t i = 0; i < data.size(); ++i) data[i] = static_cast<std::byte>(i * 7);
  ASSERT_TRUE(client.write(1, 0, data).is_ok());
  ASSERT_TRUE(client.fsync(1).is_ok());
  auto r = client.read(1, 0, data.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), data);
  ASSERT_TRUE(client.close(1).is_ok());
  server.stop();
}

}  // namespace
}  // namespace iofwd::rt
