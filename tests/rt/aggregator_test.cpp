#include "rt/aggregator.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/rng.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace iofwd::rt {
namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& x : v) x = static_cast<std::byte>(rng.next());
  return v;
}

struct Fixture {
  MemBackend* mem;
  AggregatingBackend agg;

  explicit Fixture(std::uint64_t window)
      : mem(nullptr), agg(
            [this] {
              auto m = std::make_unique<MemBackend>();
              mem = m.get();
              return m;
            }(),
            window) {}
};

TEST(Aggregator, CoalescesSequentialWrites) {
  Fixture fx(1 << 20);
  ASSERT_TRUE(fx.agg.open(1, "f").is_ok());
  const auto chunk = pattern(4096, 1);
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(fx.agg.write(1, static_cast<std::uint64_t>(i) * chunk.size(), chunk).is_ok());
  }
  EXPECT_EQ(fx.agg.writes_in(), 16u);
  EXPECT_EQ(fx.agg.writes_out(), 0u) << "all buffered; window not full";
  ASSERT_TRUE(fx.agg.fsync(1).is_ok());
  EXPECT_EQ(fx.agg.writes_out(), 1u) << "one coalesced write";
  EXPECT_EQ(fx.mem->snapshot("f").size(), 16 * 4096u);
}

TEST(Aggregator, FullWindowFlushesAutomatically) {
  Fixture fx(8192);
  ASSERT_TRUE(fx.agg.open(1, "f").is_ok());
  const auto chunk = pattern(4096, 2);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(fx.agg.write(1, static_cast<std::uint64_t>(i) * chunk.size(), chunk).is_ok());
  }
  EXPECT_EQ(fx.agg.writes_out(), 2u);  // two full 8 KiB windows
}

TEST(Aggregator, NonContiguousWriteFlushes) {
  Fixture fx(1 << 20);
  ASSERT_TRUE(fx.agg.open(1, "f").is_ok());
  const auto a = pattern(4096, 3);
  ASSERT_TRUE(fx.agg.write(1, 0, a).is_ok());
  ASSERT_TRUE(fx.agg.write(1, 1 << 16, a).is_ok());  // gap
  EXPECT_EQ(fx.agg.writes_out(), 1u);
  ASSERT_TRUE(fx.agg.fsync(1).is_ok());
  const auto stored = fx.mem->snapshot("f");
  ASSERT_EQ(stored.size(), (1u << 16) + 4096u);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), stored.begin()));
  EXPECT_TRUE(std::equal(a.begin(), a.end(), stored.begin() + (1 << 16)));
}

TEST(Aggregator, ReadFlushesFirst) {
  Fixture fx(1 << 20);
  ASSERT_TRUE(fx.agg.open(1, "f").is_ok());
  const auto a = pattern(4096, 4);
  ASSERT_TRUE(fx.agg.write(1, 0, a).is_ok());
  std::vector<std::byte> out(4096);
  auto r = fx.agg.read(1, 0, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 4096u);
  EXPECT_EQ(out, a);
}

TEST(Aggregator, WriteLargerThanWindow) {
  Fixture fx(4096);
  ASSERT_TRUE(fx.agg.open(1, "f").is_ok());
  const auto big = pattern(3 * 4096 + 100, 5);
  ASSERT_TRUE(fx.agg.write(1, 0, big).is_ok());
  ASSERT_TRUE(fx.agg.close(1).is_ok());
  ASSERT_TRUE(fx.agg.open(2, "f").is_ok());
  std::vector<std::byte> out(big.size());
  auto r = fx.agg.read(2, 0, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(out, big);
}

TEST(Aggregator, CloseFlushes) {
  Fixture fx(1 << 20);
  ASSERT_TRUE(fx.agg.open(1, "f").is_ok());
  const auto a = pattern(1000, 6);
  ASSERT_TRUE(fx.agg.write(1, 0, a).is_ok());
  ASSERT_TRUE(fx.agg.close(1).is_ok());
  EXPECT_EQ(fx.mem->snapshot("f").size(), 1000u);
}

TEST(Aggregator, PerFdWindowsAreIndependent) {
  Fixture fx(1 << 20);
  ASSERT_TRUE(fx.agg.open(1, "a").is_ok());
  ASSERT_TRUE(fx.agg.open(2, "b").is_ok());
  const auto d = pattern(512, 7);
  ASSERT_TRUE(fx.agg.write(1, 0, d).is_ok());
  ASSERT_TRUE(fx.agg.write(2, 0, d).is_ok());
  ASSERT_TRUE(fx.agg.fsync(1).is_ok());
  EXPECT_EQ(fx.mem->snapshot("a").size(), 512u);
  EXPECT_TRUE(fx.mem->snapshot("b").empty()) << "fd 2 still buffered";
  ASSERT_TRUE(fx.agg.close(2).is_ok());
  EXPECT_EQ(fx.mem->snapshot("b").size(), 512u);
}

TEST(Aggregator, ComposesWithServer) {
  // Small client writes aggregate into large backend writes — the
  // write-back-caching optimization of the related work, running under the
  // worker-pool execution model instead of a single aggregation thread.
  auto mem_owned = std::make_unique<MemBackend>();
  auto* mem = mem_owned.get();
  auto agg_owned = std::make_unique<AggregatingBackend>(std::move(mem_owned), 256 * 1024);
  auto* agg = agg_owned.get();
  ServerConfig cfg;
  cfg.workers = 1;  // strict FIFO execution => deterministic coalescing
  IonServer server(std::move(agg_owned), cfg);
  auto [se, ce] = InProcTransport::make_pair();
  server.serve(std::move(se));
  Client client(std::move(ce));

  ASSERT_TRUE(client.open(1, "ckpt").is_ok());
  const auto chunk = pattern(16 * 1024, 8);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(client.write(1, static_cast<std::uint64_t>(i) * chunk.size(), chunk).is_ok());
  }
  ASSERT_TRUE(client.fsync(1).is_ok());
  EXPECT_EQ(agg->writes_in(), 64u);
  EXPECT_LE(agg->writes_out(), 5u) << "64 small writes became a few large ones";
  EXPECT_EQ(mem->snapshot("ckpt").size(), 64 * chunk.size());
  ASSERT_TRUE(client.close(1).is_ok());
}

}  // namespace
}  // namespace iofwd::rt
