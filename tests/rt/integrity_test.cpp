// Version negotiation and end-to-end checksum plumbing: v1 <-> v1 turns
// payload CRCs on; either side at v0 turns them off and everything still
// interoperates (DESIGN.md §12).
#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace iofwd::rt {
namespace {

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& x : v) x = static_cast<std::byte>(rng.next());
  return v;
}

struct Fx {
  MemBackend* mem = nullptr;
  std::unique_ptr<IonServer> server;
  std::unique_ptr<Client> client;

  explicit Fx(std::uint16_t server_ver = kProtoVersion,
              std::uint16_t client_ver = kProtoVersion) {
    auto m = std::make_unique<MemBackend>();
    mem = m.get();
    ServerConfig scfg;
    scfg.max_wire_version = server_ver;
    server = std::make_unique<IonServer>(std::move(m), scfg);
    auto [s, c] = InProcTransport::make_pair();
    server->serve(std::move(s));
    ClientConfig ccfg;
    ccfg.max_wire_version = client_ver;
    client = std::make_unique<Client>(std::move(c), ccfg);
  }
};

// The full forwarded-op mix must work at any negotiated version.
void run_op_mix(Fx& fx, std::uint64_t seed) {
  const auto data = pattern(8_KiB, seed);
  ASSERT_TRUE(fx.client->open(1, "mix").is_ok());
  ASSERT_TRUE(fx.client->write(1, 0, data).is_ok());
  ASSERT_TRUE(fx.client->write(1, data.size(), data).is_ok());
  auto r = fx.client->read(1, 0, data.size());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), data);
  ASSERT_TRUE(fx.client->fsync(1).is_ok());
  auto sz = fx.client->fstat_size(1);
  ASSERT_TRUE(sz.is_ok());
  EXPECT_EQ(sz.value(), 2 * data.size());
  ASSERT_TRUE(fx.client->close(1).is_ok());
  const auto all = fx.mem->snapshot("mix");
  ASSERT_EQ(all.size(), 2 * data.size());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), all.begin()));
}

TEST(Integrity, V1BothSidesNegotiateChecksums) {
  Fx fx;
  EXPECT_EQ(fx.client->negotiated_version(), 0) << "no traffic yet";
  run_op_mix(fx, 21);
  EXPECT_EQ(fx.client->negotiated_version(), kProtoVersion);
  EXPECT_EQ(fx.server->stats().hellos, 1u);
  // Clean run: every counter on both sides stays at zero.
  const auto ss = fx.server->stats();
  EXPECT_EQ(ss.header_crc_errors, 0u);
  EXPECT_EQ(ss.payload_crc_errors, 0u);
  EXPECT_EQ(ss.frames_rejected, 0u);
  const auto cs = fx.client->stats();
  EXPECT_EQ(cs.header_crc_errors, 0u);
  EXPECT_EQ(cs.payload_crc_errors, 0u);
  EXPECT_EQ(cs.request_bounces, 0u);
}

TEST(Integrity, V1ClientInteropsWithV0Server) {
  Fx fx(/*server_ver=*/0, /*client_ver=*/kProtoVersion);
  run_op_mix(fx, 22);
  // The hello happened, but the server clamped the connection to v0:
  // checksums stay off and everything still works.
  EXPECT_EQ(fx.client->negotiated_version(), 0);
  EXPECT_EQ(fx.server->stats().hellos, 1u);
}

TEST(Integrity, V0ClientInteropsWithV1Server) {
  Fx fx(/*server_ver=*/kProtoVersion, /*client_ver=*/0);
  run_op_mix(fx, 23);
  // A v0 client never sends hello; the server leaves the connection at v0.
  EXPECT_EQ(fx.client->negotiated_version(), 0);
  EXPECT_EQ(fx.server->stats().hellos, 0u);
}

TEST(Integrity, FutureClientVersionClampsToServers) {
  // A client from the future (v2) advertises 2; today's server clamps to 1
  // and both sides agree on it.
  Fx fx(/*server_ver=*/kProtoVersion, /*client_ver=*/kProtoVersion + 1);
  run_op_mix(fx, 24);
  EXPECT_EQ(fx.client->negotiated_version(), kProtoVersion);
}

TEST(Integrity, HelloRepeatsPerConnection) {
  // Every reconnect renegotiates: the server counts one hello per dial.
  MemBackend* mem = nullptr;
  auto m = std::make_unique<MemBackend>();
  mem = m.get();
  auto server = std::make_unique<IonServer>(std::move(m), ServerConfig{});
  (void)mem;

  auto [s0, c0] = InProcTransport::make_pair();
  server->serve(std::move(s0));
  StreamFactory factory = [&server]() -> Result<std::unique_ptr<ByteStream>> {
    auto [s, c] = InProcTransport::make_pair();
    server->serve(std::move(s));
    return std::unique_ptr<ByteStream>(std::move(c));
  };
  Client client(std::move(c0), {}, factory);
  ASSERT_TRUE(client.open(1, "f").is_ok());
  ASSERT_TRUE(client.shutdown().is_ok());  // server closes this connection
  // Next op redials, which renegotiates, replays open, and succeeds.
  ASSERT_TRUE(client.write(1, 0, pattern(1_KiB, 25)).is_ok());
  EXPECT_EQ(server->stats().hellos, 2u);
  EXPECT_EQ(client.negotiated_version(), kProtoVersion);
}

}  // namespace
}  // namespace iofwd::rt
