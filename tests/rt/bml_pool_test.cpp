#include "rt/bml.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

namespace iofwd::rt {
namespace {

TEST(BufferPool, AcquireGivesPow2Class) {
  BufferPool pool(1 << 20);
  auto b = pool.acquire(100000);
  ASSERT_TRUE(b.is_ok());
  EXPECT_EQ(b.value().size(), 131072u);
  EXPECT_NE(b.value().data(), nullptr);
  EXPECT_EQ(pool.in_use(), 131072u);
}

TEST(BufferPool, ReleaseOnDestruction) {
  BufferPool pool(1 << 20);
  {
    auto b = pool.acquire(4096);
    ASSERT_TRUE(b.is_ok());
    EXPECT_EQ(pool.in_use(), 4096u);
  }
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_EQ(pool.high_watermark(), 4096u);
}

TEST(BufferPool, BuffersAreReused) {
  BufferPool pool(1 << 20);
  std::byte* first = nullptr;
  {
    auto b = pool.acquire(8192);
    ASSERT_TRUE(b.is_ok());
    first = b.value().data();
    std::memset(first, 0xab, 8192);
  }
  auto b2 = pool.acquire(8192);
  ASSERT_TRUE(b2.is_ok());
  EXPECT_EQ(b2.value().data(), first) << "same-class buffer should be recycled";
}

TEST(BufferPool, MoveTransfersOwnership) {
  BufferPool pool(1 << 20);
  auto b = pool.acquire(4096);
  ASSERT_TRUE(b.is_ok());
  Buffer moved = std::move(b).value();
  Buffer moved2 = std::move(moved);
  EXPECT_FALSE(moved.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(moved2.valid());
  moved2.release();
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(BufferPool, OversizeRequestFailsFast) {
  BufferPool pool(64 * 1024);
  auto b = pool.acquire(1 << 20);
  EXPECT_FALSE(b.is_ok());
  EXPECT_EQ(b.code(), Errc::no_memory);
}

TEST(BufferPool, TryAcquireWouldBlock) {
  BufferPool pool(8192, 4096);
  auto a = pool.try_acquire(8192);
  ASSERT_TRUE(a.is_ok());
  auto b = pool.try_acquire(4096);
  EXPECT_EQ(b.code(), Errc::would_block);
}

TEST(BufferPool, ExhaustionBlocksUntilRelease) {
  BufferPool pool(8192, 4096);
  auto held = pool.acquire(8192);
  ASSERT_TRUE(held.is_ok());

  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    auto b = pool.acquire(4096);
    ASSERT_TRUE(b.is_ok());
    acquired = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(acquired) << "acquire must block while the pool is full";
  held.value().release();
  waiter.join();
  EXPECT_TRUE(acquired);
  EXPECT_GE(pool.blocked_acquires(), 1u);
}

TEST(BufferPool, ConcurrentChurnKeepsAccounting) {
  BufferPool pool(1 << 20, 4096);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 500; ++i) {
        auto b = pool.acquire(static_cast<std::uint64_t>(4096 << (t % 4)));
        if (!b.is_ok()) {
          ++failures;
          continue;
        }
        // Touch the memory to catch double-handouts under tsan/asan.
        std::memset(b.value().data(), t, 64);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures, 0);
  EXPECT_EQ(pool.in_use(), 0u);
  EXPECT_LE(pool.high_watermark(), pool.capacity());
}

TEST(BufferPoolQuarter, ClassesBoundWasteAtQuarter) {
  BufferPool pool(1_GiB, 4096, SizeClassPolicy::quarter);
  // 1.1 MiB request: pow2 would burn 2 MiB; quarter classes give 1.25 MiB.
  const std::uint64_t req = (11ull << 20) / 10;
  const auto cls = pool.size_class(req);
  EXPECT_GE(cls, req);
  EXPECT_LE(cls, req + req / 4) << "waste must stay within 25%";
}

class QuarterClassProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QuarterClassProperty, CoversTightly) {
  BufferPool pool(1_GiB, 4096, SizeClassPolicy::quarter);
  const auto req = GetParam();
  const auto cls = pool.size_class(req);
  EXPECT_GE(cls, req);
  if (req > 4096) {
    EXPECT_LE(static_cast<double>(cls), 1.26 * static_cast<double>(req));
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuarterClassProperty,
                         ::testing::Values(1u, 4096u, 4097u, 5000u, 6000u, 7000u, 8192u, 10000u,
                                           100000u, 1000000u, (1u << 20) + 1, 3u << 20));

TEST(BufferPoolQuarter, PacksMoreUnderPressure) {
  // Three 1.1 MiB payloads in a 4 MiB pool: pow2 classes (2 MiB) fit two;
  // quarter classes (1.25 MiB) fit all three.
  const std::uint64_t req = (11ull << 20) / 10;
  BufferPool p2(4_MiB, 4096, SizeClassPolicy::pow2);
  BufferPool pq(4_MiB, 4096, SizeClassPolicy::quarter);
  std::vector<Buffer> held;
  auto a1 = p2.try_acquire(req);
  auto a2 = p2.try_acquire(req);
  auto a3 = p2.try_acquire(req);
  EXPECT_TRUE(a1.is_ok());
  EXPECT_TRUE(a2.is_ok());
  EXPECT_FALSE(a3.is_ok());
  auto b1 = pq.try_acquire(req);
  auto b2 = pq.try_acquire(req);
  auto b3 = pq.try_acquire(req);
  EXPECT_TRUE(b1.is_ok());
  EXPECT_TRUE(b2.is_ok());
  EXPECT_TRUE(b3.is_ok());
}

TEST(BufferPoolQuarter, AcquireReleaseRoundTrip) {
  BufferPool pool(16_MiB, 4096, SizeClassPolicy::quarter);
  {
    auto b = pool.acquire(5000);
    ASSERT_TRUE(b.is_ok());
    EXPECT_GE(b.value().size(), 5000u);
    std::memset(b.value().data(), 0x5a, 5000);
  }
  EXPECT_EQ(pool.in_use(), 0u);
}

}  // namespace
}  // namespace iofwd::rt
