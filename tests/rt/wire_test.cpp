#include "rt/wire.hpp"

#include <gtest/gtest.h>

#include <array>
#include <string>
#include <vector>

#include "core/crc32c.hpp"
#include "core/rng.hpp"

namespace iofwd::rt {
namespace {

using Buf = std::array<std::byte, FrameHeader::kWireSize>;

Buf encoded(const FrameHeader& h) {
  Buf buf;
  h.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
  return buf;
}

Result<FrameHeader> decoded(const Buf& buf) {
  return FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(buf));
}

// Corrupting a field must re-stamp the header CRC, otherwise decode reports
// checksum_error before it ever looks at the field. These tests validate
// field checks, so they patch bytes *and* fix the CRC up afterwards.
void restamp_crc(Buf& buf) {
  const std::uint32_t crc = crc32c(buf.data(), FrameHeader::kCrcCoverage);
  std::memcpy(buf.data() + FrameHeader::kCrcCoverage, &crc, sizeof crc);
}

TEST(Wire, HeaderRoundTrip) {
  FrameHeader h;
  h.type = MsgType::reply;
  h.op = OpCode::write;
  h.flags = FrameHeader::kFlagStaged;
  h.version = kProtoVersion;
  h.klass = 2;
  h.fd = 42;
  h.status = static_cast<std::int32_t>(Errc::io_error);
  h.seq = 0xdeadbeefcafe;
  h.offset = 1ull << 40;
  h.payload_len = 12345;
  h.payload_crc = 0x12345678;

  auto r = decoded(encoded(h));
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const auto& d = r.value();
  EXPECT_EQ(d.type, MsgType::reply);
  EXPECT_EQ(d.op, OpCode::write);
  EXPECT_EQ(d.flags, FrameHeader::kFlagStaged);
  EXPECT_EQ(d.version, kProtoVersion);
  EXPECT_EQ(d.klass, 2);
  EXPECT_EQ(d.reserved, 0);
  EXPECT_EQ(d.fd, 42);
  EXPECT_EQ(d.status, static_cast<std::int32_t>(Errc::io_error));
  EXPECT_EQ(d.seq, 0xdeadbeefcafeull);
  EXPECT_EQ(d.offset, 1ull << 40);
  EXPECT_EQ(d.payload_len, 12345u);
  EXPECT_EQ(d.payload_crc, 0x12345678u);
}

TEST(Wire, EncodeDecodeIdentityAcrossAllOpcodes) {
  // Property test: any header built from valid field values survives an
  // encode/decode round trip bit-for-bit.
  Rng rng(0x51f3ULL);
  for (int trial = 0; trial < 500; ++trial) {
    FrameHeader h;
    h.type = rng.below(2) == 0 ? MsgType::request : MsgType::reply;
    h.op = static_cast<OpCode>(1 + rng.below(kMaxOpCode));
    h.flags = static_cast<std::uint16_t>(rng.below(FrameHeader::kFlagMask + 1));
    h.version = static_cast<std::uint16_t>(rng.below(kProtoVersion + 1));
    h.klass = static_cast<std::uint8_t>(rng.below(kMaxPriorityClass + 1));
    h.fd = static_cast<std::int32_t>(rng.below(1u << 20)) - 1;
    h.status = static_cast<std::int32_t>(rng.below(kErrcCount));
    h.seq = rng.next();
    h.offset = rng.next() >> 8;
    h.payload_len = rng.below(kMaxPayload + 1);
    h.deadline_ms = static_cast<std::uint32_t>(rng.below(100000));
    h.payload_crc = static_cast<std::uint32_t>(rng.next());

    auto r = decoded(encoded(h));
    ASSERT_TRUE(r.is_ok()) << trial << ": " << r.status().to_string();
    const auto& d = r.value();
    EXPECT_EQ(d.type, h.type);
    EXPECT_EQ(d.op, h.op);
    EXPECT_EQ(d.flags, h.flags);
    EXPECT_EQ(d.version, h.version);
    EXPECT_EQ(d.klass, h.klass);
    EXPECT_EQ(d.fd, h.fd);
    EXPECT_EQ(d.status, h.status);
    EXPECT_EQ(d.seq, h.seq);
    EXPECT_EQ(d.offset, h.offset);
    EXPECT_EQ(d.payload_len, h.payload_len);
    EXPECT_EQ(d.deadline_ms, h.deadline_ms);
    EXPECT_EQ(d.payload_crc, h.payload_crc);
  }
}

TEST(Wire, StagedFlagRoundTrip) {
  FrameHeader h;
  h.type = MsgType::reply;
  h.flags = FrameHeader::kFlagStaged;
  auto r = decoded(encoded(h));
  ASSERT_TRUE(r.is_ok());
  EXPECT_NE(r.value().flags & FrameHeader::kFlagStaged, 0);
  EXPECT_EQ(r.value().flags & FrameHeader::kFlagPayloadCrc, 0);
}

TEST(Wire, HeaderCrcCatchesAnySingleBitFlip) {
  FrameHeader h;
  h.op = OpCode::write;
  h.seq = 7;
  const Buf good = encoded(h);
  for (std::size_t bit = 0; bit < FrameHeader::kWireSize * 8; ++bit) {
    Buf buf = good;
    buf[bit / 8] ^= std::byte{static_cast<unsigned char>(1u << (bit % 8))};
    auto r = decoded(buf);
    ASSERT_FALSE(r.is_ok()) << "bit " << bit;
    EXPECT_EQ(r.code(), Errc::checksum_error) << "bit " << bit;
  }
}

TEST(Wire, RejectsBadMagic) {
  Buf buf = encoded(FrameHeader{});
  buf[0] = std::byte{0x00};
  restamp_crc(buf);  // valid CRC over a bad magic: a protocol fault, not corruption
  auto r = decoded(buf);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::protocol_error);
}

TEST(Wire, RejectsBadTypeAndOp) {
  Buf buf = encoded(FrameHeader{});
  buf[4] = std::byte{9};  // type
  restamp_crc(buf);
  auto r = decoded(buf);
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::protocol_error);

  buf = encoded(FrameHeader{});
  buf[5] = std::byte{0};  // opcode below the range
  restamp_crc(buf);
  EXPECT_EQ(decoded(buf).code(), Errc::protocol_error);

  buf = encoded(FrameHeader{});
  buf[5] = std::byte{static_cast<unsigned char>(kMaxOpCode + 1)};  // just past the range
  restamp_crc(buf);
  EXPECT_EQ(decoded(buf).code(), Errc::protocol_error);
}

TEST(Wire, RejectsUndefinedFlagBits) {
  FrameHeader h;
  h.flags = static_cast<std::uint16_t>(FrameHeader::kFlagMask + 1);  // first undefined bit
  auto r = decoded(encoded(h));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::protocol_error);

  h.flags = 0x8000;
  EXPECT_EQ(decoded(encoded(h)).code(), Errc::protocol_error);
}

TEST(Wire, RejectsNonzeroReservedField) {
  FrameHeader h;
  h.reserved = 1;
  auto r = decoded(encoded(h));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::protocol_error);
}

TEST(Wire, PriorityClassRoundTripsAndBoundsAreEnforced) {
  // Every in-range class decodes and round-trips; the first out-of-range
  // value is a protocol fault (the receiver cannot order by a class it does
  // not define).
  for (std::uint8_t k = 0; k <= kMaxPriorityClass; ++k) {
    FrameHeader h;
    h.op = OpCode::write;
    h.klass = k;
    auto r = decoded(encoded(h));
    ASSERT_TRUE(r.is_ok()) << int(k);
    EXPECT_EQ(r.value().klass, k);
  }
  FrameHeader h;
  h.klass = kMaxPriorityClass + 1;
  auto r = decoded(encoded(h));
  ASSERT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::protocol_error);
}

TEST(Wire, ClassZeroMatchesPreClassEncoding) {
  // The class byte was carved out of the 16-bit reserved field; class 0
  // must therefore be byte-for-byte what a pre-class encoder emitted
  // (bytes 10 and 11 both zero) — v0 interop depends on it.
  const Buf buf = encoded(FrameHeader{});
  EXPECT_EQ(buf[10], std::byte{0});
  EXPECT_EQ(buf[11], std::byte{0});
  auto r = decoded(buf);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value().klass, 0);
  EXPECT_EQ(r.value().reserved, 0);
}

TEST(Wire, RejectsFutureVersionExceptOnHello) {
  FrameHeader h;
  h.version = kProtoVersion + 1;
  h.op = OpCode::write;
  EXPECT_EQ(decoded(encoded(h)).code(), Errc::protocol_error);

  // hello advertises the sender's highest version — possibly above ours —
  // and the receiver clamps instead of rejecting.
  h.op = OpCode::hello;
  auto r = decoded(encoded(h));
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value().version, kProtoVersion + 1);
}

TEST(Wire, RejectsOversizePayload) {
  FrameHeader h;
  h.payload_len = kMaxPayload + 1;
  auto r = decoded(encoded(h));
  EXPECT_EQ(r.code(), Errc::message_too_large);

  h.payload_len = ~0ull;  // a hostile length must not reach an allocator
  EXPECT_EQ(decoded(encoded(h)).code(), Errc::message_too_large);

  h.payload_len = kMaxPayload;  // boundary is inclusive
  EXPECT_TRUE(decoded(encoded(h)).is_ok());
}

TEST(Wire, DynamicSpanDecodeRejectsTruncation) {
  const Buf buf = encoded(FrameHeader{});
  for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{43},
                        FrameHeader::kWireSize - 1}) {
    auto r = FrameHeader::decode(std::span<const std::byte>(buf.data(), n));
    ASSERT_FALSE(r.is_ok()) << n;
    EXPECT_EQ(r.code(), Errc::protocol_error) << n;
  }
  EXPECT_TRUE(FrameHeader::decode(std::span<const std::byte>(buf.data(), buf.size())).is_ok());
}

TEST(Wire, PayloadCrcStampAndVerify) {
  std::vector<std::byte> payload(4096);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = std::byte{static_cast<unsigned char>(i * 31)};
  }

  FrameHeader h;
  h.op = OpCode::write;
  h.payload_len = payload.size();
  h.stamp_payload_crc(payload);
  EXPECT_NE(h.flags & FrameHeader::kFlagPayloadCrc, 0);

  auto r = decoded(encoded(h));
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(r.value().payload_crc_ok(payload));

  payload[100] ^= std::byte{0x01};
  EXPECT_FALSE(r.value().payload_crc_ok(payload));
  payload[100] ^= std::byte{0x01};
  EXPECT_TRUE(r.value().payload_crc_ok(payload));

  // Without the flag (a v0 peer) any payload is accepted unchecked.
  FrameHeader v0;
  v0.payload_len = payload.size();
  EXPECT_TRUE(v0.payload_crc_ok(payload));
  payload[0] ^= std::byte{0xFF};
  EXPECT_TRUE(v0.payload_crc_ok(payload));
}

TEST(Wire, OpcodeNamesAreStable) {
  EXPECT_STREQ(opcode_name(OpCode::open), "open");
  EXPECT_STREQ(opcode_name(OpCode::write), "write");
  EXPECT_STREQ(opcode_name(OpCode::read), "read");
  EXPECT_STREQ(opcode_name(OpCode::close), "close");
  EXPECT_STREQ(opcode_name(OpCode::fsync), "fsync");
  EXPECT_STREQ(opcode_name(OpCode::shutdown), "shutdown");
  EXPECT_STREQ(opcode_name(OpCode::fstat), "fstat");
  EXPECT_STREQ(opcode_name(OpCode::hello), "hello");
}

TEST(Wire, EveryOpcodeUpToMaxHasANameAndDecodes) {
  // Ties decode's validity switch, opcode_name, and kMaxOpCode together:
  // adding an opcode without updating all three fails here.
  for (std::uint8_t op = 1; op <= kMaxOpCode; ++op) {
    EXPECT_STRNE(opcode_name(static_cast<OpCode>(op)), "?") << int(op);
    FrameHeader h;
    h.op = static_cast<OpCode>(op);
    EXPECT_TRUE(decoded(encoded(h)).is_ok()) << int(op);
  }
  EXPECT_STREQ(opcode_name(static_cast<OpCode>(kMaxOpCode + 1)), "?");
}

}  // namespace
}  // namespace iofwd::rt
