#include "rt/wire.hpp"

#include <gtest/gtest.h>

namespace iofwd::rt {
namespace {

TEST(Wire, HeaderRoundTrip) {
  FrameHeader h;
  h.type = MsgType::reply;
  h.op = OpCode::write;
  h.flags = FrameHeader::kFlagStaged;
  h.fd = 42;
  h.status = static_cast<std::int32_t>(Errc::io_error);
  h.seq = 0xdeadbeefcafe;
  h.offset = 1ull << 40;
  h.payload_len = 12345;

  std::byte buf[FrameHeader::kWireSize];
  h.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
  auto r = FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(buf));
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  const auto& d = r.value();
  EXPECT_EQ(d.type, MsgType::reply);
  EXPECT_EQ(d.op, OpCode::write);
  EXPECT_EQ(d.flags, FrameHeader::kFlagStaged);
  EXPECT_EQ(d.fd, 42);
  EXPECT_EQ(d.status, static_cast<std::int32_t>(Errc::io_error));
  EXPECT_EQ(d.seq, 0xdeadbeefcafeull);
  EXPECT_EQ(d.offset, 1ull << 40);
  EXPECT_EQ(d.payload_len, 12345u);
}

TEST(Wire, RejectsBadMagic) {
  FrameHeader h;
  std::byte buf[FrameHeader::kWireSize];
  h.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
  buf[0] = std::byte{0x00};
  auto r = FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(buf));
  EXPECT_FALSE(r.is_ok());
  EXPECT_EQ(r.code(), Errc::protocol_error);
}

TEST(Wire, RejectsBadTypeAndOp) {
  FrameHeader h;
  std::byte buf[FrameHeader::kWireSize];
  h.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
  buf[4] = std::byte{9};  // type
  EXPECT_FALSE(FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(buf)).is_ok());
  h.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
  buf[5] = std::byte{0};  // opcode
  EXPECT_FALSE(FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(buf)).is_ok());
}

TEST(Wire, RejectsOversizePayload) {
  FrameHeader h;
  h.payload_len = kMaxPayload + 1;
  std::byte buf[FrameHeader::kWireSize];
  h.encode(std::span<std::byte, FrameHeader::kWireSize>(buf));
  auto r = FrameHeader::decode(std::span<const std::byte, FrameHeader::kWireSize>(buf));
  EXPECT_EQ(r.code(), Errc::message_too_large);
}

TEST(Wire, OpcodeNamesAreStable) {
  EXPECT_STREQ(opcode_name(OpCode::open), "open");
  EXPECT_STREQ(opcode_name(OpCode::write), "write");
  EXPECT_STREQ(opcode_name(OpCode::read), "read");
  EXPECT_STREQ(opcode_name(OpCode::close), "close");
  EXPECT_STREQ(opcode_name(OpCode::fsync), "fsync");
  EXPECT_STREQ(opcode_name(OpCode::shutdown), "shutdown");
}

}  // namespace
}  // namespace iofwd::rt
