// Transport-level fault injection: connections that die mid-frame,
// mid-payload, or feed garbage. The server must drop the client cleanly —
// no hangs, no leaked BML buffers, no poisoned worker pool — and keep
// serving other clients.
#include <gtest/gtest.h>

#include <atomic>

#include "bb/burst_buffer.hpp"
#include "core/units.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::rt {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

// A client whose connection dies after a written-byte budget (the old
// test-local CuttingStream, now TestCluster's cut_after_write_bytes spec).
std::size_t add_cut_client(TestCluster& tc, std::uint64_t cut_after) {
  TestCluster::ClientSpec spec;
  spec.cut_after_write_bytes = cut_after;
  return tc.add_client(std::move(spec));
}

class FaultModels : public ::testing::TestWithParam<ExecModel> {};

TEST_P(FaultModels, CutMidHeaderDoesNotWedgeServer) {
  ClusterOptions o;
  o.server.exec = GetParam();
  o.clients = 0;
  TestCluster tc(o);

  // Client cut after 10 bytes: the server sees a truncated frame header.
  auto& bad = tc.client(add_cut_client(tc, 10));
  EXPECT_FALSE(bad.open(1, "x").is_ok());

  // A healthy client connected afterwards is fully served.
  auto& good = tc.client(tc.add_client());
  ASSERT_TRUE(good.open(2, "y").is_ok());
  const auto data = pattern(64_KiB, 1);
  ASSERT_TRUE(good.write(2, 0, data).is_ok());
  ASSERT_TRUE(good.fsync(2).is_ok());
  EXPECT_TRUE(good.close(2).is_ok());
}

TEST_P(FaultModels, CutMidPayloadReleasesStagingBuffer) {
  ClusterOptions o;
  o.server.exec = GetParam();
  o.server.bml_bytes = 1_MiB;
  o.clients = 0;
  TestCluster tc(o);

  // Header (44 B) goes through; the 256 KiB payload is cut at 50 KiB.
  auto& bad = tc.client(add_cut_client(tc, FrameHeader::kWireSize + 50 * 1024));
  (void)bad.open(1, "x");  // open succeeds (small frames)... or dies; both fine
  const auto data = pattern(256_KiB, 2);
  EXPECT_FALSE(bad.write(1, 0, data).is_ok());

  // The staging buffer the server acquired for the half-received payload
  // must be back in the pool: a healthy client can stage the full 1 MiB.
  auto& good = tc.client(tc.add_client());
  ASSERT_TRUE(good.open(2, "y").is_ok());
  const auto big = pattern(1_MiB, 3);
  ASSERT_TRUE(good.write(2, 0, big).is_ok());
  ASSERT_TRUE(good.fsync(2).is_ok());
  EXPECT_LE(tc.server().stats().bml_high_watermark, o.server.bml_bytes);
}

TEST_P(FaultModels, GarbageFrameDropsClientOnly) {
  ClusterOptions o;
  o.server.exec = GetParam();
  o.clients = 0;
  TestCluster tc(o);

  // Feed raw garbage instead of a frame (raw stream, no Client framing).
  auto raw = tc.factory()();
  ASSERT_TRUE(raw.is_ok());
  std::vector<std::byte> junk(FrameHeader::kWireSize, std::byte{0x5a});
  ASSERT_TRUE(raw.value()->write_all(junk.data(), junk.size()).is_ok());

  auto& good = tc.client(tc.add_client());
  ASSERT_TRUE(good.open(7, "z").is_ok());
  EXPECT_TRUE(good.close(7).is_ok());
  raw.value()->close();
}

INSTANTIATE_TEST_SUITE_P(Models, FaultModels,
                         ::testing::Values(ExecModel::thread_per_client, ExecModel::work_queue,
                                           ExecModel::work_queue_async),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

TEST(FaultInjection, RepeatedBadClientsDoNotExhaustServer) {
  ClusterOptions o;
  o.clients = 0;
  TestCluster tc(o);
  for (int i = 0; i < 20; ++i) {
    auto& bad = tc.client(add_cut_client(tc, 5 + static_cast<std::uint64_t>(i)));
    (void)bad.open(1, "x");
  }
  auto& good = tc.client(tc.add_client());
  ASSERT_TRUE(good.open(99, "final").is_ok());
  const auto data = pattern(128_KiB, 9);
  ASSERT_TRUE(good.write(99, 0, data).is_ok());
  ASSERT_TRUE(good.fsync(99).is_ok());
  EXPECT_TRUE(good.close(99).is_ok());
}

// --- Burst-buffer flush faults -------------------------------------------
// With the staging cache enabled, a write is acknowledged before the backend
// sees it; a backend failure at flush time must follow the deferred-error
// contract: surface exactly once on the next op on that descriptor, leave the
// op unexecuted, and leak no cache buffers.

TestCluster bb_cluster() {
  ClusterOptions o;
  o.server.exec = ExecModel::work_queue_async;
  o.server.bb_bytes = 4_MiB;
  o.server.bb_high_watermark = 1.0;  // flush only on explicit drains
  o.server.bb_low_watermark = 1.0;
  return TestCluster(o);
}

TEST(FaultInjection, BurstBufferFlushErrorDefersAndSurfacesOnce) {
  TestCluster tc = bb_cluster();
  auto& client = tc.client();
  ASSERT_TRUE(client.open(1, "x").is_ok());

  const auto data = pattern(64_KiB, 21);
  ASSERT_TRUE(client.write(1, 0, data).is_ok());  // ack'd: staged in the cache
  tc.backend_plan().fail_always(fault::OpKind::write, Errc::io_error);

  // fsync forces the drain; the flush failure surfaces on this very call.
  Status st = client.fsync(1);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::io_error);

  // Exactly once: with the fault cleared the descriptor is healthy again.
  tc.backend_plan().clear();
  EXPECT_TRUE(client.fsync(1).is_ok());

  // The failed extent's lease was dropped, not leaked: a fresh write of the
  // same data lands cleanly end-to-end.
  ASSERT_TRUE(client.write(1, 0, data).is_ok());
  ASSERT_TRUE(client.fsync(1).is_ok());
  EXPECT_EQ(tc.snapshot("x"), data);
  ASSERT_TRUE(client.close(1).is_ok());
  ASSERT_NE(tc.server().burst_buffer(), nullptr);
  EXPECT_EQ(tc.server().burst_buffer()->stats().cached_bytes, 0u) << "cache leaked a lease";
  EXPECT_EQ(tc.server().burst_buffer()->stats().deferred_errors, 1u);
}

TEST(FaultInjection, BurstBufferFlushErrorAtCloseIsReported) {
  TestCluster tc = bb_cluster();
  auto& client = tc.client();
  ASSERT_TRUE(client.open(1, "x").is_ok());
  ASSERT_TRUE(client.write(1, 0, pattern(32_KiB, 22)).is_ok());
  tc.backend_plan().fail_always(fault::OpKind::write, Errc::io_error);

  // close() drains; the flush failure must not vanish silently.
  EXPECT_FALSE(client.close(1).is_ok());
  tc.backend_plan().clear();
  EXPECT_EQ(tc.server().burst_buffer()->stats().cached_bytes, 0u)
      << "close must release every lease even when the drain fails";

  // The descriptor is gone and the server keeps serving.
  ASSERT_TRUE(client.open(2, "y").is_ok());
  const auto data = pattern(16_KiB, 23);
  ASSERT_TRUE(client.write(2, 0, data).is_ok());
  ASSERT_TRUE(client.fsync(2).is_ok());
  EXPECT_EQ(tc.snapshot("y"), data);
  EXPECT_TRUE(client.close(2).is_ok());
}

}  // namespace
}  // namespace iofwd::rt
