// Transport-level fault injection: connections that die mid-frame,
// mid-payload, or feed garbage. The server must drop the client cleanly —
// no hangs, no leaked BML buffers, no poisoned worker pool — and keep
// serving other clients.
#include <gtest/gtest.h>

#include <atomic>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace iofwd::rt {
namespace {

// Wraps a stream and kills the connection after `cut_after` bytes written
// by this end.
class CuttingStream final : public ByteStream {
 public:
  CuttingStream(std::unique_ptr<ByteStream> inner, std::size_t cut_after)
      : inner_(std::move(inner)), budget_(cut_after) {}

  Status read_exact(void* buf, std::size_t n) override { return inner_->read_exact(buf, n); }

  Status write_all(const void* buf, std::size_t n) override {
    if (n >= budget_) {
      // Send the prefix, then drop the line.
      (void)inner_->write_all(buf, budget_);
      inner_->close();
      budget_ = 0;
      return Status(Errc::shutdown, "injected cut");
    }
    budget_ -= n;
    return inner_->write_all(buf, n);
  }

  void close() override { inner_->close(); }

 private:
  std::unique_ptr<ByteStream> inner_;
  std::size_t budget_;
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& x : v) x = static_cast<std::byte>(rng.next());
  return v;
}

class FaultModels : public ::testing::TestWithParam<ExecModel> {};

TEST_P(FaultModels, CutMidHeaderDoesNotWedgeServer) {
  ServerConfig cfg;
  cfg.exec = GetParam();
  IonServer server(std::make_unique<MemBackend>(), cfg);

  auto [sa, ca] = InProcTransport::make_pair();
  server.serve(std::move(sa));
  // Client cut after 10 bytes: the server sees a truncated frame header.
  Client bad(std::make_unique<CuttingStream>(std::move(ca), 10));
  EXPECT_FALSE(bad.open(1, "x").is_ok());

  // A healthy client connected afterwards is fully served.
  auto [sb, cb] = InProcTransport::make_pair();
  server.serve(std::move(sb));
  Client good(std::move(cb));
  ASSERT_TRUE(good.open(2, "y").is_ok());
  const auto data = pattern(64_KiB, 1);
  ASSERT_TRUE(good.write(2, 0, data).is_ok());
  ASSERT_TRUE(good.fsync(2).is_ok());
  EXPECT_TRUE(good.close(2).is_ok());
}

TEST_P(FaultModels, CutMidPayloadReleasesStagingBuffer) {
  ServerConfig cfg;
  cfg.exec = GetParam();
  cfg.bml_bytes = 1_MiB;
  IonServer server(std::make_unique<MemBackend>(), cfg);

  auto [sa, ca] = InProcTransport::make_pair();
  server.serve(std::move(sa));
  // Header (44 B) goes through; the 256 KiB payload is cut at 50 KiB.
  Client bad(std::make_unique<CuttingStream>(std::move(ca), FrameHeader::kWireSize + 50 * 1024));
  (void)bad.open(1, "x");  // open succeeds (small frames)... or dies; both fine
  const auto data = pattern(256_KiB, 2);
  EXPECT_FALSE(bad.write(1, 0, data).is_ok());

  // The staging buffer the server acquired for the half-received payload
  // must be back in the pool: a healthy client can stage the full 1 MiB.
  auto [sb, cb] = InProcTransport::make_pair();
  server.serve(std::move(sb));
  Client good(std::move(cb));
  ASSERT_TRUE(good.open(2, "y").is_ok());
  const auto big = pattern(1_MiB, 3);
  ASSERT_TRUE(good.write(2, 0, big).is_ok());
  ASSERT_TRUE(good.fsync(2).is_ok());
  EXPECT_LE(server.stats().bml_high_watermark, cfg.bml_bytes);
}

TEST_P(FaultModels, GarbageFrameDropsClientOnly) {
  ServerConfig cfg;
  cfg.exec = GetParam();
  IonServer server(std::make_unique<MemBackend>(), cfg);

  auto [sa, ca] = InProcTransport::make_pair();
  server.serve(std::move(sa));
  // Feed raw garbage instead of a frame.
  std::vector<std::byte> junk(FrameHeader::kWireSize, std::byte{0x5a});
  ASSERT_TRUE(ca->write_all(junk.data(), junk.size()).is_ok());

  auto [sb, cb] = InProcTransport::make_pair();
  server.serve(std::move(sb));
  Client good(std::move(cb));
  ASSERT_TRUE(good.open(7, "z").is_ok());
  EXPECT_TRUE(good.close(7).is_ok());
  ca->close();
}

INSTANTIATE_TEST_SUITE_P(Models, FaultModels,
                         ::testing::Values(ExecModel::thread_per_client, ExecModel::work_queue,
                                           ExecModel::work_queue_async),
                         [](const auto& info) { return to_string(info.param); });

TEST(FaultInjection, RepeatedBadClientsDoNotExhaustServer) {
  IonServer server(std::make_unique<MemBackend>(), {});
  for (int i = 0; i < 20; ++i) {
    auto [sa, ca] = InProcTransport::make_pair();
    server.serve(std::move(sa));
    Client bad(std::make_unique<CuttingStream>(std::move(ca), 5 + static_cast<std::size_t>(i)));
    (void)bad.open(1, "x");
  }
  auto [sb, cb] = InProcTransport::make_pair();
  server.serve(std::move(sb));
  Client good(std::move(cb));
  ASSERT_TRUE(good.open(99, "final").is_ok());
  const auto data = pattern(128_KiB, 9);
  ASSERT_TRUE(good.write(99, 0, data).is_ok());
  ASSERT_TRUE(good.fsync(99).is_ok());
  EXPECT_TRUE(good.close(99).is_ok());
}

}  // namespace
}  // namespace iofwd::rt
