// Transport-level fault injection: connections that die mid-frame,
// mid-payload, or feed garbage. The server must drop the client cleanly —
// no hangs, no leaked BML buffers, no poisoned worker pool — and keep
// serving other clients.
#include <gtest/gtest.h>

#include <atomic>

#include "bb/burst_buffer.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace iofwd::rt {
namespace {

// Kills the connection after a byte budget written by this end (the old
// test-local CuttingStream, now the shared fault::FaultyStream decorator).
std::unique_ptr<ByteStream> cutting(std::unique_ptr<ByteStream> inner, std::uint64_t cut_after) {
  return std::make_unique<fault::FaultyStream>(std::move(inner), cut_after);
}

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& x : v) x = static_cast<std::byte>(rng.next());
  return v;
}

class FaultModels : public ::testing::TestWithParam<ExecModel> {};

TEST_P(FaultModels, CutMidHeaderDoesNotWedgeServer) {
  ServerConfig cfg;
  cfg.exec = GetParam();
  IonServer server(std::make_unique<MemBackend>(), cfg);

  auto [sa, ca] = InProcTransport::make_pair();
  server.serve(std::move(sa));
  // Client cut after 10 bytes: the server sees a truncated frame header.
  Client bad(cutting(std::move(ca), 10));
  EXPECT_FALSE(bad.open(1, "x").is_ok());

  // A healthy client connected afterwards is fully served.
  auto [sb, cb] = InProcTransport::make_pair();
  server.serve(std::move(sb));
  Client good(std::move(cb));
  ASSERT_TRUE(good.open(2, "y").is_ok());
  const auto data = pattern(64_KiB, 1);
  ASSERT_TRUE(good.write(2, 0, data).is_ok());
  ASSERT_TRUE(good.fsync(2).is_ok());
  EXPECT_TRUE(good.close(2).is_ok());
}

TEST_P(FaultModels, CutMidPayloadReleasesStagingBuffer) {
  ServerConfig cfg;
  cfg.exec = GetParam();
  cfg.bml_bytes = 1_MiB;
  IonServer server(std::make_unique<MemBackend>(), cfg);

  auto [sa, ca] = InProcTransport::make_pair();
  server.serve(std::move(sa));
  // Header (44 B) goes through; the 256 KiB payload is cut at 50 KiB.
  Client bad(cutting(std::move(ca), FrameHeader::kWireSize + 50 * 1024));
  (void)bad.open(1, "x");  // open succeeds (small frames)... or dies; both fine
  const auto data = pattern(256_KiB, 2);
  EXPECT_FALSE(bad.write(1, 0, data).is_ok());

  // The staging buffer the server acquired for the half-received payload
  // must be back in the pool: a healthy client can stage the full 1 MiB.
  auto [sb, cb] = InProcTransport::make_pair();
  server.serve(std::move(sb));
  Client good(std::move(cb));
  ASSERT_TRUE(good.open(2, "y").is_ok());
  const auto big = pattern(1_MiB, 3);
  ASSERT_TRUE(good.write(2, 0, big).is_ok());
  ASSERT_TRUE(good.fsync(2).is_ok());
  EXPECT_LE(server.stats().bml_high_watermark, cfg.bml_bytes);
}

TEST_P(FaultModels, GarbageFrameDropsClientOnly) {
  ServerConfig cfg;
  cfg.exec = GetParam();
  IonServer server(std::make_unique<MemBackend>(), cfg);

  auto [sa, ca] = InProcTransport::make_pair();
  server.serve(std::move(sa));
  // Feed raw garbage instead of a frame.
  std::vector<std::byte> junk(FrameHeader::kWireSize, std::byte{0x5a});
  ASSERT_TRUE(ca->write_all(junk.data(), junk.size()).is_ok());

  auto [sb, cb] = InProcTransport::make_pair();
  server.serve(std::move(sb));
  Client good(std::move(cb));
  ASSERT_TRUE(good.open(7, "z").is_ok());
  EXPECT_TRUE(good.close(7).is_ok());
  ca->close();
}

INSTANTIATE_TEST_SUITE_P(Models, FaultModels,
                         ::testing::Values(ExecModel::thread_per_client, ExecModel::work_queue,
                                           ExecModel::work_queue_async),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

TEST(FaultInjection, RepeatedBadClientsDoNotExhaustServer) {
  IonServer server(std::make_unique<MemBackend>(), {});
  for (int i = 0; i < 20; ++i) {
    auto [sa, ca] = InProcTransport::make_pair();
    server.serve(std::move(sa));
    Client bad(cutting(std::move(ca), 5 + static_cast<std::uint64_t>(i)));
    (void)bad.open(1, "x");
  }
  auto [sb, cb] = InProcTransport::make_pair();
  server.serve(std::move(sb));
  Client good(std::move(cb));
  ASSERT_TRUE(good.open(99, "final").is_ok());
  const auto data = pattern(128_KiB, 9);
  ASSERT_TRUE(good.write(99, 0, data).is_ok());
  ASSERT_TRUE(good.fsync(99).is_ok());
  EXPECT_TRUE(good.close(99).is_ok());
}

// --- Burst-buffer flush faults -------------------------------------------
// With the staging cache enabled, a write is acknowledged before the backend
// sees it; a backend failure at flush time must follow the deferred-error
// contract: surface exactly once on the next op on that descriptor, leave the
// op unexecuted, and leak no cache buffers.

struct BbFaultFixture {
  MemBackend* mem = nullptr;
  std::shared_ptr<fault::FaultPlan> plan = std::make_shared<fault::FaultPlan>();
  IonServer server;

  BbFaultFixture()
      : server(
            [this] {
              auto m = std::make_unique<MemBackend>();
              mem = m.get();
              return std::make_unique<fault::FaultyBackend>(std::move(m), plan);
            }(),
            [] {
              ServerConfig cfg;
              cfg.exec = ExecModel::work_queue_async;
              cfg.bb_bytes = 4_MiB;
              cfg.bb_high_watermark = 1.0;  // flush only on explicit drains
              cfg.bb_low_watermark = 1.0;
              return cfg;
            }()) {}
};

TEST(FaultInjection, BurstBufferFlushErrorDefersAndSurfacesOnce) {
  BbFaultFixture fx;
  auto [se, ce] = InProcTransport::make_pair();
  fx.server.serve(std::move(se));
  Client client(std::move(ce));
  ASSERT_TRUE(client.open(1, "x").is_ok());

  const auto data = pattern(64_KiB, 21);
  ASSERT_TRUE(client.write(1, 0, data).is_ok());  // ack'd: staged in the cache
  fx.plan->fail_always(fault::OpKind::write, Errc::io_error);

  // fsync forces the drain; the flush failure surfaces on this very call.
  Status st = client.fsync(1);
  ASSERT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::io_error);

  // Exactly once: with the fault cleared the descriptor is healthy again.
  fx.plan->clear();
  EXPECT_TRUE(client.fsync(1).is_ok());

  // The failed extent's lease was dropped, not leaked: a fresh write of the
  // same data lands cleanly end-to-end.
  ASSERT_TRUE(client.write(1, 0, data).is_ok());
  ASSERT_TRUE(client.fsync(1).is_ok());
  EXPECT_EQ(fx.mem->snapshot("x"), data);
  ASSERT_TRUE(client.close(1).is_ok());
  ASSERT_NE(fx.server.burst_buffer(), nullptr);
  EXPECT_EQ(fx.server.burst_buffer()->stats().cached_bytes, 0u) << "cache leaked a lease";
  EXPECT_EQ(fx.server.burst_buffer()->stats().deferred_errors, 1u);
}

TEST(FaultInjection, BurstBufferFlushErrorAtCloseIsReported) {
  BbFaultFixture fx;
  auto [se, ce] = InProcTransport::make_pair();
  fx.server.serve(std::move(se));
  Client client(std::move(ce));
  ASSERT_TRUE(client.open(1, "x").is_ok());
  ASSERT_TRUE(client.write(1, 0, pattern(32_KiB, 22)).is_ok());
  fx.plan->fail_always(fault::OpKind::write, Errc::io_error);

  // close() drains; the flush failure must not vanish silently.
  EXPECT_FALSE(client.close(1).is_ok());
  fx.plan->clear();
  EXPECT_EQ(fx.server.burst_buffer()->stats().cached_bytes, 0u)
      << "close must release every lease even when the drain fails";

  // The descriptor is gone and the server keeps serving.
  ASSERT_TRUE(client.open(2, "y").is_ok());
  const auto data = pattern(16_KiB, 23);
  ASSERT_TRUE(client.write(2, 0, data).is_ok());
  ASSERT_TRUE(client.fsync(2).is_ok());
  EXPECT_EQ(fx.mem->snapshot("y"), data);
  EXPECT_TRUE(client.close(2).is_ok());
}

}  // namespace
}  // namespace iofwd::rt
