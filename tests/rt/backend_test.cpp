#include "rt/backend.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>

#include "fault/decorators.hpp"

namespace iofwd::rt {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

template <typename Backend>
void basic_lifecycle(Backend& be) {
  ASSERT_TRUE(be.open(1, "file_a").is_ok());
  const auto data = bytes_of("hello world");
  auto w = be.write(1, 0, data);
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(w.value(), data.size());

  std::vector<std::byte> out(5);
  auto r = be.read(1, 6, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 5u);
  EXPECT_EQ(std::memcmp(out.data(), "world", 5), 0);

  EXPECT_TRUE(be.fsync(1).is_ok());
  auto sz = be.size(1);
  ASSERT_TRUE(sz.is_ok());
  EXPECT_EQ(sz.value(), data.size());
  EXPECT_TRUE(be.close(1).is_ok());
  EXPECT_EQ(be.close(1).code(), Errc::bad_descriptor);
  EXPECT_EQ(be.size(1).code(), Errc::bad_descriptor);
}

TEST(MemBackend, Lifecycle) {
  MemBackend be;
  basic_lifecycle(be);
}

TEST(FileBackend, Lifecycle) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("iofwd_fb_" + std::to_string(::getpid()));
  FileBackend be(root.string());
  basic_lifecycle(be);
  std::filesystem::remove_all(root);
}

TEST(MemBackend, UnknownFdErrors) {
  MemBackend be;
  std::vector<std::byte> buf(4);
  EXPECT_EQ(be.write(9, 0, buf).code(), Errc::bad_descriptor);
  EXPECT_EQ(be.read(9, 0, buf).code(), Errc::bad_descriptor);
  EXPECT_EQ(be.fsync(9).code(), Errc::bad_descriptor);
}

TEST(MemBackend, DoubleOpenSameFdRejected) {
  MemBackend be;
  ASSERT_TRUE(be.open(1, "x").is_ok());
  EXPECT_EQ(be.open(1, "y").code(), Errc::invalid_argument);
}

TEST(MemBackend, SparseWriteZeroFills) {
  MemBackend be;
  be.open(1, "f");
  const auto d = bytes_of("xy");
  be.write(1, 10, d);
  std::vector<std::byte> out(12);
  auto r = be.read(1, 0, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 12u);
  EXPECT_EQ(out[0], std::byte{0});
  EXPECT_EQ(out[10], std::byte{'x'});
}

TEST(MemBackend, ReadPastEofIsShort) {
  MemBackend be;
  be.open(1, "f");
  be.write(1, 0, bytes_of("abc"));
  std::vector<std::byte> out(10);
  auto r = be.read(1, 2, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 1u);
  auto r2 = be.read(1, 100, out);
  ASSERT_TRUE(r2.is_ok());
  EXPECT_EQ(r2.value(), 0u);
}

TEST(MemBackend, SamePathSharedAcrossFds) {
  MemBackend be;
  be.open(1, "shared");
  be.open(2, "shared");
  be.write(1, 0, bytes_of("data"));
  std::vector<std::byte> out(4);
  auto r = be.read(2, 0, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(std::memcmp(out.data(), "data", 4), 0);
}

TEST(MemBackend, FaultyBackendInjectsWriteErrors) {
  auto plan = std::make_shared<fault::FaultPlan>();
  fault::FaultyBackend be(std::make_unique<MemBackend>(), plan);
  be.open(1, "f");
  plan->add({.op = fault::OpKind::write, .nth = 1, .error = Errc::io_error});
  EXPECT_EQ(be.write(1, 0, bytes_of("x")).code(), Errc::io_error);
  EXPECT_TRUE(be.write(1, 8, bytes_of("x")).is_ok());
}

TEST(MemBackend, SnapshotReflectsWrites) {
  MemBackend be;
  be.open(1, "snap");
  be.write(1, 0, bytes_of("abc"));
  auto s = be.snapshot("snap");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[2], std::byte{'c'});
  EXPECT_TRUE(be.snapshot("missing").empty());
}

TEST(FileBackend, RejectsPathEscape) {
  FileBackend be("/tmp/iofwd_root");
  EXPECT_EQ(be.open(1, "../etc/passwd").code(), Errc::invalid_argument);
}

TEST(FileBackend, PersistsAcrossReopen) {
  const auto root = std::filesystem::temp_directory_path() /
                    ("iofwd_fb2_" + std::to_string(::getpid()));
  {
    FileBackend be(root.string());
    be.open(1, "persist");
    be.write(1, 0, bytes_of("persisted"));
    be.close(1);
  }
  {
    FileBackend be(root.string());
    be.open(2, "persist");
    std::vector<std::byte> out(9);
    auto r = be.read(2, 0, out);
    ASSERT_TRUE(r.is_ok());
    EXPECT_EQ(std::memcmp(out.data(), "persisted", 9), 0);
    be.close(2);
  }
  std::filesystem::remove_all(root);
}

TEST(NullBackend, SwallowsEverything) {
  NullBackend be;
  EXPECT_TRUE(be.open(1, "whatever").is_ok());
  auto w = be.write(1, 0, bytes_of("data"));
  ASSERT_TRUE(w.is_ok());
  EXPECT_EQ(w.value(), 4u);
  std::vector<std::byte> out(4, std::byte{0xff});
  auto r = be.read(1, 0, out);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(out[0], std::byte{0});
  EXPECT_TRUE(be.close(1).is_ok());
}

}  // namespace
}  // namespace iofwd::rt
