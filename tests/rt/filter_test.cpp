#include "rt/filter.hpp"

#include <gtest/gtest.h>

#include <cstring>

#include "core/rng.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace iofwd::rt {
namespace {

std::vector<std::byte> doubles(std::initializer_list<double> vs) {
  std::vector<std::byte> out(vs.size() * sizeof(double));
  std::size_t i = 0;
  for (double v : vs) {
    std::memcpy(out.data() + i * sizeof(double), &v, sizeof(double));
    ++i;
  }
  return out;
}

TEST(DownsampleFilter, KeepsEveryKth) {
  DownsampleFilter f(/*stride=*/2, /*element_bytes=*/8);
  auto data = doubles({1.0, 2.0, 3.0, 4.0, 5.0});
  ASSERT_TRUE(f.apply(0, 0, data).is_ok());
  ASSERT_EQ(data.size(), 3 * sizeof(double));
  double v;
  std::memcpy(&v, data.data(), 8);
  EXPECT_EQ(v, 1.0);
  std::memcpy(&v, data.data() + 8, 8);
  EXPECT_EQ(v, 3.0);
  std::memcpy(&v, data.data() + 16, 8);
  EXPECT_EQ(v, 5.0);
}

TEST(DownsampleFilter, StrideOneIsPassthrough) {
  DownsampleFilter f(1);
  auto data = doubles({1.0, 2.0});
  const auto before = data;
  ASSERT_TRUE(f.apply(0, 0, data).is_ok());
  EXPECT_EQ(data, before);
}

TEST(DownsampleFilter, RejectsRaggedPayload) {
  DownsampleFilter f(2, 8);
  std::vector<std::byte> data(13);
  EXPECT_EQ(f.apply(0, 0, data).code(), Errc::invalid_argument);
}

TEST(DownsampleFilter, MapsOffsets) {
  DownsampleFilter f(4);
  EXPECT_EQ(f.map_offset(4096), 1024u);
  EXPECT_EQ(f.name(), "downsample/4");
}

TEST(ZeroRleFilter, RoundTripsSparseData) {
  ZeroRleFilter f;
  std::vector<std::byte> data(64 * 1024, std::byte{0});
  data[5] = std::byte{7};
  data[40000] = std::byte{9};
  const auto original = data;
  ASSERT_TRUE(f.apply(0, 0, data).is_ok());
  EXPECT_LT(data.size(), original.size() / 100) << "sparse data must shrink dramatically";
  auto back = ZeroRleFilter::decode(data);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), original);
  EXPECT_EQ(f.bytes_in(), original.size());
  EXPECT_EQ(f.bytes_out(), data.size());
}

TEST(ZeroRleFilter, RoundTripsRandomData) {
  ZeroRleFilter f;
  Rng rng(3);
  std::vector<std::byte> data(4096);
  for (auto& b : data) b = static_cast<std::byte>(rng.below(4));  // many zeros
  const auto original = data;
  ASSERT_TRUE(f.apply(0, 0, data).is_ok());
  auto back = ZeroRleFilter::decode(data);
  ASSERT_TRUE(back.is_ok());
  EXPECT_EQ(back.value(), original);
}

TEST(ZeroRleFilter, EmptyInput) {
  ZeroRleFilter f;
  std::vector<std::byte> data;
  ASSERT_TRUE(f.apply(0, 0, data).is_ok());
  EXPECT_TRUE(data.empty());
  auto back = ZeroRleFilter::decode(data);
  ASSERT_TRUE(back.is_ok());
  EXPECT_TRUE(back.value().empty());
}

TEST(ZeroRleFilter, DecodeRejectsTruncation) {
  std::vector<std::byte> bad{std::byte{1}, std::byte{2}};
  EXPECT_EQ(ZeroRleFilter::decode(bad).code(), Errc::protocol_error);
}

TEST(MomentsFilter, ComputesRunningMoments) {
  MomentsFilter f;
  auto a = doubles({1.0, 5.0, 3.0});
  auto b = doubles({-2.0, 10.0});
  ASSERT_TRUE(f.apply(0, 0, a).is_ok());
  ASSERT_TRUE(f.apply(0, 24, b).is_ok());
  const auto m = f.moments();
  EXPECT_EQ(m.count, 5u);
  EXPECT_EQ(m.min, -2.0);
  EXPECT_EQ(m.max, 10.0);
  EXPECT_DOUBLE_EQ(m.sum, 17.0);
  EXPECT_DOUBLE_EQ(m.mean(), 3.4);
  // Payload untouched.
  EXPECT_EQ(a, doubles({1.0, 5.0, 3.0}));
}

TEST(FilterChain, AppliesInOrderAndMapsOffsets) {
  FilterChain chain;
  auto moments = std::make_shared<MomentsFilter>();
  chain.add(moments);
  chain.add(std::make_shared<DownsampleFilter>(2, 8));
  auto data = doubles({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(chain.apply(0, 64, data).is_ok());
  EXPECT_EQ(data.size(), 2 * sizeof(double));       // downsampled
  EXPECT_EQ(moments->moments().count, 4u);          // observed before reduction
  EXPECT_EQ(chain.map_offset(64), 32u);
}

TEST(FilterChain, EmptyChainIsIdentity) {
  FilterChain chain;
  EXPECT_TRUE(chain.empty());
  auto data = doubles({1.0});
  ASSERT_TRUE(chain.apply(0, 8, data).is_ok());
  EXPECT_EQ(data, doubles({1.0}));
  EXPECT_EQ(chain.map_offset(8), 8u);
}

// ---------------------------------------------------------------------------
// Server integration: filtering on the forwarding path.
// ---------------------------------------------------------------------------

TEST(FilterServer, DownsampleReducesStoredData) {
  auto backend = std::make_unique<MemBackend>();
  auto* mem = backend.get();
  IonServer server(std::move(backend), {});
  FilterChain chain;
  auto moments = std::make_shared<MomentsFilter>();
  chain.add(moments);
  chain.add(std::make_shared<DownsampleFilter>(4, 8));
  server.set_filter_chain(std::move(chain));

  auto [se, ce] = InProcTransport::make_pair();
  server.serve(std::move(se));
  Client client(std::move(ce));

  ASSERT_TRUE(client.open(1, "field").is_ok());
  std::vector<double> field(1024);
  for (std::size_t i = 0; i < field.size(); ++i) field[i] = static_cast<double>(i);
  std::vector<std::byte> payload(field.size() * 8);
  std::memcpy(payload.data(), field.data(), payload.size());
  ASSERT_TRUE(client.write(1, 0, payload).is_ok());
  ASSERT_TRUE(client.fsync(1).is_ok());

  // Stored file holds the 4:1 downsampled field.
  const auto stored = mem->snapshot("field");
  ASSERT_EQ(stored.size(), 256 * 8u);
  double v;
  std::memcpy(&v, stored.data() + 8, 8);
  EXPECT_EQ(v, 4.0);  // second kept element is field[4]

  // In-situ analytics observed the full-resolution data.
  EXPECT_EQ(moments->moments().count, 1024u);
  EXPECT_EQ(moments->moments().max, 1023.0);

  const auto s = server.stats();
  EXPECT_EQ(s.filter_bytes_in, payload.size());
  EXPECT_EQ(s.filter_bytes_out, 256 * 8u);
  ASSERT_TRUE(client.close(1).is_ok());
}

TEST(FilterServer, FilterErrorBecomesDeferredError) {
  auto backend = std::make_unique<MemBackend>();
  IonServer server(std::move(backend), {});
  FilterChain chain;
  chain.add(std::make_shared<DownsampleFilter>(2, 8));
  server.set_filter_chain(std::move(chain));

  auto [se, ce] = InProcTransport::make_pair();
  server.serve(std::move(se));
  Client client(std::move(ce));
  ASSERT_TRUE(client.open(1, "f").is_ok());
  std::vector<std::byte> ragged(13);  // not a whole number of doubles
  ASSERT_TRUE(client.write(1, 0, ragged).is_ok()) << "staging still succeeds";
  EXPECT_EQ(client.fsync(1).code(), Errc::invalid_argument);
  EXPECT_TRUE(client.close(1).is_ok());
}

}  // namespace
}  // namespace iofwd::rt
