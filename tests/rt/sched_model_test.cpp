// Model-based conformance suite for the pluggable schedulers (DESIGN.md §17,
// README "Test harness").
//
// Every policy behind TaskQueue must agree, pop for pop, with a golden
// reference model — a trivially-readable reimplementation of the policy's
// contract over flat vectors (linear scans, no clever data structures). A
// seeded generator drives randomized {push(tenant, class, deadline, bytes),
// pop} streams through the real Scheduler and the model side by side; any
// disagreement is delta-minimized (greedily dropping ops while the failure
// reproduces, like extent_stress_test) and printed with the seed, so the
// report is a ready-made regression test. Replay with IOFWD_TEST_SEED=0x...
//
// Pops against an empty scheduler are generated too and skipped by both
// sides — that keeps every subsequence of a failing stream well-formed,
// which is what makes greedy shrinking sound.
//
// This suite is the contract future policies must pass: add the policy to
// kAllPolicies, write its model, and the stream generator does the rest.
#include "rt/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/rng.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::rt {
namespace {

constexpr SchedPolicy kAllPolicies[] = {SchedPolicy::fifo, SchedPolicy::prio,
                                        SchedPolicy::edf, SchedPolicy::fair};
constexpr std::uint64_t kQuantum = 64 << 10;  // small quantum: more rotations
constexpr std::uint64_t kTenants = 6;
constexpr std::uint64_t kMaxBytes = 128 << 10;

struct Op {
  bool is_push = true;
  SchedMeta meta;   // valid when is_push
  std::uint64_t id = 0;  // the pushed item
};

std::string to_string(const Op& op, std::chrono::steady_clock::time_point base) {
  if (!op.is_push) return "pop()";
  std::ostringstream os;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(op.meta.arrival - base).count();
  os << "push(id=" << op.id << ", tenant=" << op.meta.tenant
     << ", class=" << int(op.meta.klass) << ", deadline_ms=" << op.meta.deadline_ms
     << ", bytes=" << op.meta.bytes << ", arrival=+" << ms << "ms)";
  return os.str();
}

// ---------------------------------------------------------------------------
// Reference models: the policy contracts, written as linear scans over a
// flat vector (plus a textbook DRR loop for `fair`). No heaps, no deques —
// trivially auditable against DESIGN.md §17.
// ---------------------------------------------------------------------------

struct ModelItem {
  SchedMeta meta;
  std::uint64_t id = 0;
  std::uint64_t seq = 0;  // push order
};

class Model {
 public:
  explicit Model(SchedPolicy policy) : policy_(policy) {}

  void push(const SchedMeta& meta, std::uint64_t id) {
    items_.push_back({meta, id, next_seq_++});
    if (policy_ == SchedPolicy::fair && !contains(activation_, meta.tenant) &&
        backlog(meta.tenant) == 1) {
      activation_.push_back(meta.tenant);
    }
  }

  std::uint64_t pop() {
    std::size_t best = 0;
    switch (policy_) {
      case SchedPolicy::fifo:
        // Lowest push seq.
        for (std::size_t i = 1; i < items_.size(); ++i) {
          if (items_[i].seq < items_[best].seq) best = i;
        }
        break;
      case SchedPolicy::prio:
        // Highest class; push order within a class.
        for (std::size_t i = 1; i < items_.size(); ++i) {
          if (items_[i].meta.klass > items_[best].meta.klass ||
              (items_[i].meta.klass == items_[best].meta.klass &&
               items_[i].seq < items_[best].seq)) {
            best = i;
          }
        }
        break;
      case SchedPolicy::edf:
        // Earliest absolute deadline (no deadline = never); push order ties.
        for (std::size_t i = 1; i < items_.size(); ++i) {
          const auto ki = EdfScheduler<int>::deadline_key(items_[i].meta);
          const auto kb = EdfScheduler<int>::deadline_key(items_[best].meta);
          if (ki < kb || (ki == kb && items_[i].seq < items_[best].seq)) best = i;
        }
        break;
      case SchedPolicy::fair:
        return pop_drr();
    }
    return take(best);
  }

  [[nodiscard]] std::size_t size() const { return items_.size(); }

 private:
  // Textbook deficit round-robin: visit tenants in activation order; a
  // visit grants one quantum of byte credit; serve that tenant's oldest
  // ops while the credit covers them; an emptied tenant forfeits leftover
  // credit and leaves the rotation; an exhausted one rotates to the back,
  // carrying its deficit.
  std::uint64_t pop_drr() {
    for (;;) {
      const std::uint64_t tenant = activation_.front();
      if (!credited_[tenant]) {
        credited_[tenant] = true;
        deficit_[tenant] += kQuantum;
      }
      const std::size_t head = oldest_of(tenant);
      const std::uint64_t cost = std::max<std::uint64_t>(1, items_[head].meta.bytes);
      if (deficit_[tenant] >= cost) {
        deficit_[tenant] -= cost;
        const std::uint64_t id = take(head);
        if (backlog(tenant) == 0) {
          deficit_[tenant] = 0;
          credited_[tenant] = false;
          activation_.erase(activation_.begin());
        }
        return id;
      }
      credited_[tenant] = false;
      activation_.erase(activation_.begin());
      activation_.push_back(tenant);
    }
  }

  [[nodiscard]] std::size_t oldest_of(std::uint64_t tenant) const {
    std::size_t best = items_.size();
    for (std::size_t i = 0; i < items_.size(); ++i) {
      if (items_[i].meta.tenant != tenant) continue;
      if (best == items_.size() || items_[i].seq < items_[best].seq) best = i;
    }
    return best;
  }

  [[nodiscard]] std::size_t backlog(std::uint64_t tenant) const {
    std::size_t n = 0;
    for (const auto& it : items_) n += it.meta.tenant == tenant ? 1 : 0;
    return n;
  }

  static bool contains(const std::vector<std::uint64_t>& v, std::uint64_t x) {
    return std::find(v.begin(), v.end(), x) != v.end();
  }

  std::uint64_t take(std::size_t i) {
    const std::uint64_t id = items_[i].id;
    items_.erase(items_.begin() + static_cast<std::ptrdiff_t>(i));
    return id;
  }

  SchedPolicy policy_;
  std::vector<ModelItem> items_;
  std::uint64_t next_seq_ = 0;
  // fair state
  std::vector<std::uint64_t> activation_;
  std::map<std::uint64_t, std::uint64_t> deficit_;
  std::map<std::uint64_t, bool> credited_;
};

// ---------------------------------------------------------------------------
// Stream replay + shrinking
// ---------------------------------------------------------------------------

// Replay `ops` against a fresh scheduler + model; returns the first
// disagreement as "op #i ...", or nullopt if the stream is clean.
std::optional<std::string> run(SchedPolicy policy, const std::vector<Op>& ops,
                               std::chrono::steady_clock::time_point base) {
  auto sched = make_scheduler<std::uint64_t>(policy, kQuantum);
  Model model(policy);
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const Op& op = ops[i];
    if (op.is_push) {
      sched->push(op.meta, op.id);
      model.push(op.meta, op.id);
    } else {
      if (sched->size() == 0 && model.size() == 0) continue;  // skip: both empty
      if (sched->size() == 0 || model.size() == 0) {
        return "op #" + std::to_string(i) + " pop(): size disagreement (sched=" +
               std::to_string(sched->size()) + ", model=" + std::to_string(model.size()) + ")";
      }
      const std::uint64_t got = sched->pop();
      const std::uint64_t want = model.pop();
      if (got != want) {
        return "op #" + std::to_string(i) + " pop(): scheduler returned id " +
               std::to_string(got) + ", model wants id " + std::to_string(want);
      }
    }
    if (sched->size() != model.size()) {
      return "op #" + std::to_string(i) + " " + to_string(op, base) + ": size " +
             std::to_string(sched->size()) + " != model " + std::to_string(model.size());
    }
  }
  // Full drain at end of stream: every remaining pop must agree too.
  while (model.size() != 0) {
    if (sched->size() == 0) return "drain: scheduler empty before model";
    const std::uint64_t got = sched->pop();
    const std::uint64_t want = model.pop();
    if (got != want) {
      return "drain: scheduler returned id " + std::to_string(got) + ", model wants id " +
             std::to_string(want);
    }
  }
  if (sched->size() != 0) return "drain: scheduler still holds items";
  return std::nullopt;
}

// Greedy delta-minimization: drop ops whose removal preserves the failure.
std::vector<Op> minimize(SchedPolicy policy, std::vector<Op> ops,
                         std::chrono::steady_clock::time_point base) {
  bool shrunk = true;
  while (shrunk) {
    shrunk = false;
    for (std::size_t i = ops.size(); i-- > 0;) {
      std::vector<Op> candidate = ops;
      candidate.erase(candidate.begin() + static_cast<std::ptrdiff_t>(i));
      if (run(policy, candidate, base).has_value()) {
        ops = std::move(candidate);
        shrunk = true;
      }
    }
  }
  return ops;
}

std::vector<Op> generate(std::uint64_t seed, std::size_t count,
                         std::chrono::steady_clock::time_point base) {
  Rng rng(seed);
  std::vector<Op> ops;
  ops.reserve(count);
  std::uint64_t next_id = 1;
  for (std::size_t i = 0; i < count; ++i) {
    Op op;
    op.is_push = rng.below(100) < 60;  // pops outnumber nothing; backlogs build
    if (op.is_push) {
      op.id = next_id++;
      op.meta.tenant = rng.below(kTenants);
      op.meta.klass = static_cast<std::uint8_t>(rng.below(kMaxPriorityClass + 1));
      // Half the ops carry no deadline — EDF must interleave both kinds.
      op.meta.deadline_ms =
          rng.below(2) == 0 ? 0 : static_cast<std::uint32_t>(1 + rng.below(100));
      op.meta.bytes = 1 + rng.below(kMaxBytes);
      // Deterministic virtual arrival: each op 1 ms after the previous, so
      // EDF keys are reproducible across the real/model pair and replays.
      op.meta.arrival = base + std::chrono::milliseconds(i);
    }
    ops.push_back(op);
  }
  return ops;
}

class SchedModel : public ::testing::TestWithParam<SchedPolicy> {};

TEST_P(SchedModel, RandomStreamsMatchReferenceModel) {
  const SchedPolicy policy = GetParam();
  const std::uint64_t seed = testsupport::test_seed("sched_model", 0x5c4edull);
  const auto base = std::chrono::steady_clock::now();
  Rng salt(seed);
  for (int round = 0; round < 20; ++round) {
    const std::uint64_t round_seed = salt.next();
    const auto ops = generate(round_seed, 400, base);
    auto err = run(policy, ops, base);
    if (!err) continue;
    const auto minimal = minimize(policy, ops, base);
    std::ostringstream os;
    os << "policy " << to_string(policy) << " diverged from its model (round " << round
       << ", replay: IOFWD_TEST_SEED=0x" << std::hex << seed << std::dec << ")\n"
       << "failure: " << *run(policy, minimal, base) << "\n"
       << "minimized to " << minimal.size() << " ops (of " << ops.size() << "):\n";
    for (const auto& op : minimal) os << "  " << to_string(op, base) << "\n";
    FAIL() << os.str();
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, SchedModel, ::testing::ValuesIn(kAllPolicies),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

// ---------------------------------------------------------------------------
// Directed conformance: one witness per policy clause, readable on its own.
// ---------------------------------------------------------------------------

SchedMeta meta(std::uint64_t tenant, std::uint8_t klass, std::uint32_t deadline_ms,
               std::uint64_t bytes, std::chrono::steady_clock::time_point arrival) {
  SchedMeta m;
  m.tenant = tenant;
  m.klass = klass;
  m.deadline_ms = deadline_ms;
  m.bytes = bytes;
  m.arrival = arrival;
  return m;
}

TEST(SchedDirected, FifoIsArrivalOrder) {
  auto s = make_scheduler<int>(SchedPolicy::fifo);
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 5; ++i) s->push(meta(0, 3, 100, 1, now), i);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(s->pop(), i);
}

TEST(SchedDirected, PriorityServesHighestClassFirstFifoWithin) {
  auto s = make_scheduler<int>(SchedPolicy::prio);
  const auto now = std::chrono::steady_clock::now();
  s->push(meta(0, 0, 0, 1, now), 10);
  s->push(meta(0, 2, 0, 1, now), 20);
  s->push(meta(0, 2, 0, 1, now), 21);
  s->push(meta(0, 3, 0, 1, now), 30);
  s->push(meta(0, 1, 0, 1, now), 40);
  EXPECT_EQ(s->pop(), 30);  // class 3
  EXPECT_EQ(s->pop(), 20);  // class 2, pushed first
  EXPECT_EQ(s->pop(), 21);
  EXPECT_EQ(s->pop(), 40);  // class 1
  EXPECT_EQ(s->pop(), 10);  // class 0
}

TEST(SchedDirected, EdfServesEarliestDeadlineAndParksDeadlineFreeOpsLast) {
  auto s = make_scheduler<int>(SchedPolicy::edf);
  const auto now = std::chrono::steady_clock::now();
  s->push(meta(0, 0, 0, 1, now), 1);                                     // no deadline
  s->push(meta(0, 0, 50, 1, now), 2);                                    // now+50ms
  s->push(meta(0, 0, 10, 1, now), 3);                                    // now+10ms
  s->push(meta(0, 0, 30, 1, now - std::chrono::milliseconds(25)), 4);    // now+5ms
  s->push(meta(0, 0, 0, 1, now), 5);                                     // no deadline
  EXPECT_EQ(s->pop(), 4);
  EXPECT_EQ(s->pop(), 3);
  EXPECT_EQ(s->pop(), 2);
  EXPECT_EQ(s->pop(), 1);  // deadline-free: FIFO among themselves, last
  EXPECT_EQ(s->pop(), 5);
}

TEST(SchedDirected, DrrAlternatesTenantsByByteQuantum) {
  // Two tenants, ops exactly one quantum each: service must alternate
  // strictly even though tenant 0 pushed its whole burst first.
  auto s = make_scheduler<int>(SchedPolicy::fair, kQuantum);
  const auto now = std::chrono::steady_clock::now();
  for (int i = 0; i < 3; ++i) s->push(meta(0, 0, 0, kQuantum, now), i);
  for (int i = 0; i < 3; ++i) s->push(meta(1, 0, 0, kQuantum, now), 100 + i);
  EXPECT_EQ(s->pop(), 0);
  EXPECT_EQ(s->pop(), 100);
  EXPECT_EQ(s->pop(), 1);
  EXPECT_EQ(s->pop(), 101);
  EXPECT_EQ(s->pop(), 2);
  EXPECT_EQ(s->pop(), 102);
}

TEST(SchedDirected, DrrSmallOpsShareQuantumLargeOpsWaitForCredit) {
  // Tenant 0 queues one 4-quantum op; tenant 1 queues eight quantum/2 ops.
  // Tenant 1's whole backlog drains while tenant 0 accumulates credit.
  auto s = make_scheduler<int>(SchedPolicy::fair, kQuantum);
  const auto now = std::chrono::steady_clock::now();
  s->push(meta(0, 0, 0, 4 * kQuantum, now), 7);
  for (int i = 0; i < 8; ++i) s->push(meta(1, 0, 0, kQuantum / 2, now), 100 + i);
  std::vector<int> order;
  for (int i = 0; i < 9; ++i) order.push_back(s->pop());
  // The big op lands only after 3 full rotations banked enough deficit —
  // i.e. after at least 6 of tenant 1's small ops.
  const auto at = std::find(order.begin(), order.end(), 7) - order.begin();
  EXPECT_GE(at, 6) << "large op jumped the shared queue";
  // Per-tenant FIFO order always holds.
  std::vector<int> t1;
  for (int id : order) {
    if (id >= 100) t1.push_back(id);
  }
  EXPECT_TRUE(std::is_sorted(t1.begin(), t1.end()));
}

TEST(SchedDirected, TaskQueueRoutesMetadataToThePolicy) {
  // The queue-level surface: a prio TaskQueue pops the high class first.
  TaskQueue<int> q(/*workers_hint=*/1, SchedPolicy::prio);
  const auto now = std::chrono::steady_clock::now();
  SchedMeta low = meta(0, 0, 0, 1, now);
  SchedMeta high = meta(0, kMaxPriorityClass, 0, 1, now);
  ASSERT_TRUE(q.push(1, low));
  ASSERT_TRUE(q.push(2, high));
  ASSERT_TRUE(q.push(3, low));
  EXPECT_EQ(q.policy(), SchedPolicy::prio);
  auto batch = q.pop_batch(3, /*balanced=*/false);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0], 2);  // high class overtook both low-class pushes
  EXPECT_EQ(batch[1], 1);
  EXPECT_EQ(batch[2], 3);
}

TEST(SchedDirected, PolicyNamesRoundTripAndAliasesParse) {
  for (SchedPolicy p : kAllPolicies) {
    auto parsed = parse_sched_policy(to_string(p));
    ASSERT_TRUE(parsed.has_value()) << to_string(p);
    EXPECT_EQ(*parsed, p);
  }
  EXPECT_EQ(parse_sched_policy("priority"), SchedPolicy::prio);  // shared alias
  EXPECT_FALSE(parse_sched_policy("sjf").has_value());           // simulator-only
  EXPECT_FALSE(parse_sched_policy("").has_value());
}

}  // namespace
}  // namespace iofwd::rt
