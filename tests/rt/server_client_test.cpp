// End-to-end tests of the real forwarding runtime: IonServer + Client over
// in-process and socket transports, across all three execution models.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/units.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::rt {
namespace {

using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

TestCluster cluster(ExecModel exec, ServerConfig cfg = {}) {
  ClusterOptions o;
  o.server = cfg;
  o.server.exec = exec;
  return TestCluster(o);
}

class AllModels : public ::testing::TestWithParam<ExecModel> {};

TEST_P(AllModels, OpenWriteReadCloseRoundTrip) {
  TestCluster tc = cluster(GetParam());
  ASSERT_TRUE(tc.client().open(1, "file").is_ok());
  const auto data = pattern(1_MiB, 7);
  ASSERT_TRUE(tc.client().write(1, 0, data).is_ok());
  ASSERT_TRUE(tc.client().fsync(1).is_ok());  // barrier so async lands
  auto r = tc.client().read(1, 0, data.size());
  ASSERT_TRUE(r.is_ok()) << r.status().to_string();
  EXPECT_EQ(r.value(), data);
  EXPECT_TRUE(tc.client().close(1).is_ok());
}

TEST_P(AllModels, OffsetWritesAssembleCorrectly) {
  TestCluster tc = cluster(GetParam());
  ASSERT_TRUE(tc.client().open(3, "f").is_ok());
  const auto a = pattern(64_KiB, 1);
  const auto b = pattern(64_KiB, 2);
  ASSERT_TRUE(tc.client().write(3, 64_KiB, b).is_ok());
  ASSERT_TRUE(tc.client().write(3, 0, a).is_ok());
  auto r = tc.client().read(3, 0, 128_KiB);
  ASSERT_TRUE(r.is_ok());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), r.value().begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), r.value().begin() + 64_KiB));
  EXPECT_TRUE(tc.client().close(3).is_ok());
}

TEST_P(AllModels, WriteToUnopenedFdFails) {
  TestCluster tc = cluster(GetParam());
  const auto data = pattern(4096, 3);
  Status st = tc.client().write(9, 0, data);
  if (GetParam() == ExecModel::work_queue_async) {
    // Staging is acknowledged; the failure is deferred to the next op.
    st = tc.client().fsync(9);
  }
  EXPECT_EQ(st.code(), Errc::bad_descriptor);
}

TEST_P(AllModels, ManySequentialOps) {
  TestCluster tc = cluster(GetParam());
  ASSERT_TRUE(tc.client().open(1, "big").is_ok());
  const auto chunk = pattern(16_KiB, 9);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(tc.client().write(1, static_cast<std::uint64_t>(i) * chunk.size(), chunk).is_ok());
  }
  ASSERT_TRUE(tc.client().fsync(1).is_ok());
  auto r = tc.client().read(1, 99 * chunk.size(), chunk.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), chunk);
  EXPECT_TRUE(tc.client().close(1).is_ok());
  const auto s = tc.server().stats();
  EXPECT_GE(s.ops, 103u);
  EXPECT_GE(s.bytes_in, 100 * chunk.size());
}

TEST_P(AllModels, ConcurrentClientsIntegrity) {
  constexpr int kClients = 8;
  ClusterOptions o;
  o.server.exec = GetParam();
  o.clients = kClients;
  TestCluster tc(o);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      auto& c = tc.client(static_cast<std::size_t>(i));
      const int fd = 10 + i;
      const auto data = pattern(256_KiB, static_cast<std::uint64_t>(i));
      if (!c.open(fd, "client_" + std::to_string(i)).is_ok()) ++failures;
      for (int op = 0; op < 20; ++op) {
        if (!c.write(fd, static_cast<std::uint64_t>(op) * data.size(), data).is_ok()) {
          ++failures;
        }
      }
      if (!c.fsync(fd).is_ok()) ++failures;
      auto r = c.read(fd, 19 * data.size(), data.size());
      if (!r.is_ok() || r.value() != data) ++failures;
      if (!c.close(fd).is_ok()) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures, 0);
}

TEST_P(AllModels, FstatReportsSize) {
  TestCluster tc = cluster(GetParam());
  ASSERT_TRUE(tc.client().open(1, "sized").is_ok());
  auto empty = tc.client().fstat_size(1);
  ASSERT_TRUE(empty.is_ok());
  EXPECT_EQ(empty.value(), 0u);
  const auto data = pattern(192_KiB, 21);
  ASSERT_TRUE(tc.client().write(1, 64_KiB, data).is_ok());
  // fstat drains in-flight async writes, so the size is exact.
  auto sz = tc.client().fstat_size(1);
  ASSERT_TRUE(sz.is_ok());
  EXPECT_EQ(sz.value(), 256_KiB);
  EXPECT_TRUE(tc.client().close(1).is_ok());
}

TEST_P(AllModels, FstatUnknownFdFails) {
  TestCluster tc = cluster(GetParam());
  EXPECT_EQ(tc.client().fstat_size(77).code(), Errc::bad_descriptor);
}

TEST_P(AllModels, ShutdownOpcodeDisconnects) {
  TestCluster tc = cluster(GetParam());
  EXPECT_TRUE(tc.client().shutdown().is_ok());
}

INSTANTIATE_TEST_SUITE_P(Models, AllModels,
                         ::testing::Values(ExecModel::thread_per_client, ExecModel::work_queue,
                                           ExecModel::work_queue_async),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

// ---------------------------------------------------------------------------
// Async-staging semantics
// ---------------------------------------------------------------------------

TEST(AsyncRt, WriteIsAcknowledgedAsStaged) {
  TestCluster tc = cluster(ExecModel::work_queue_async);
  ASSERT_TRUE(tc.client().open(1, "f").is_ok());
  const auto data = pattern(64_KiB, 4);
  ASSERT_TRUE(tc.client().write(1, 0, data).is_ok());
  EXPECT_TRUE(tc.client().last_write_was_staged());
  ASSERT_TRUE(tc.client().close(1).is_ok());
}

TEST(SyncRt, WriteIsNotStaged) {
  TestCluster tc = cluster(ExecModel::work_queue);
  ASSERT_TRUE(tc.client().open(1, "f").is_ok());
  const auto data = pattern(4096, 4);
  ASSERT_TRUE(tc.client().write(1, 0, data).is_ok());
  EXPECT_FALSE(tc.client().last_write_was_staged());
}

TEST(AsyncRt, DeferredErrorReportedExactlyOnce) {
  TestCluster tc = cluster(ExecModel::work_queue_async);
  ASSERT_TRUE(tc.client().open(1, "f").is_ok());
  // Transient single-shot fault: the next backend write fails, then clears.
  tc.backend_plan().add({.op = fault::OpKind::write, .nth = 1, .error = Errc::io_error});
  const auto data = pattern(4096, 5);
  ASSERT_TRUE(tc.client().write(1, 0, data).is_ok());
  // fsync drains and must report the deferred failure.
  EXPECT_EQ(tc.client().fsync(1).code(), Errc::io_error);
  // Consumed: everything after is clean.
  EXPECT_TRUE(tc.client().fsync(1).is_ok());
  EXPECT_TRUE(tc.client().write(1, 0, data).is_ok());
  EXPECT_TRUE(tc.client().close(1).is_ok());
}

TEST(AsyncRt, CloseReportsDeferredError) {
  TestCluster tc = cluster(ExecModel::work_queue_async);
  ASSERT_TRUE(tc.client().open(1, "f").is_ok());
  tc.backend_plan().fail_always(fault::OpKind::write, Errc::io_error);
  const auto data = pattern(4096, 6);
  ASSERT_TRUE(tc.client().write(1, 0, data).is_ok());
  EXPECT_EQ(tc.client().close(1).code(), Errc::io_error);
  const auto s = tc.server().stats();
  EXPECT_GE(s.deferred_errors, 1u);
}

TEST(AsyncRt, ReadAfterWriteIsConsistent) {
  // The read barrier: a read observes all previously staged writes.
  TestCluster tc = cluster(ExecModel::work_queue_async);
  ASSERT_TRUE(tc.client().open(1, "f").is_ok());
  const auto data = pattern(1_MiB, 8);
  ASSERT_TRUE(tc.client().write(1, 0, data).is_ok());
  auto r = tc.client().read(1, 0, data.size());  // no fsync in between
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), data);
  EXPECT_TRUE(tc.client().close(1).is_ok());
}

TEST(AsyncRt, BmlBackpressureStillDeliversEverything) {
  ServerConfig cfg;
  cfg.bml_bytes = 256 * 1024;  // tiny pool forces staging to block
  TestCluster tc = cluster(ExecModel::work_queue_async, cfg);
  ASSERT_TRUE(tc.client().open(1, "f").is_ok());
  const auto data = pattern(64_KiB, 9);
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(tc.client().write(1, static_cast<std::uint64_t>(i) * data.size(), data).is_ok());
  }
  ASSERT_TRUE(tc.client().fsync(1).is_ok());
  auto r = tc.client().read(1, 63 * data.size(), data.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), data);
  EXPECT_TRUE(tc.client().close(1).is_ok());
  EXPECT_LE(tc.server().stats().bml_high_watermark, 256u * 1024);
}

TEST(Rt, OversizeWriteBouncesCleanly) {
  ServerConfig cfg;
  cfg.bml_bytes = 64 * 1024;
  TestCluster tc = cluster(ExecModel::work_queue, cfg);
  ASSERT_TRUE(tc.client().open(1, "f").is_ok());
  const auto data = pattern(1_MiB, 10);  // exceeds the whole pool
  EXPECT_EQ(tc.client().write(1, 0, data).code(), Errc::no_memory);
  // The connection remains usable afterwards.
  const auto small = pattern(4096, 11);
  EXPECT_TRUE(tc.client().write(1, 0, small).is_ok());
}

// Raw socketpair wiring is deliberately hand-built: it pins the one transport
// TestCluster doesn't use.
TEST(Rt, WorksOverSocketpair) {
  auto pair = SocketTransport::make_socketpair();
  ASSERT_TRUE(pair.is_ok());
  auto backend = std::make_unique<MemBackend>();
  IonServer server(std::move(backend), {});
  server.serve(std::move(pair.value().first));
  Client client(std::move(pair.value().second));
  ASSERT_TRUE(client.open(1, "sock").is_ok());
  const auto data = pattern(512_KiB, 12);
  ASSERT_TRUE(client.write(1, 0, data).is_ok());
  ASSERT_TRUE(client.fsync(1).is_ok());
  auto r = client.read(1, 0, data.size());
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), data);
  EXPECT_TRUE(client.close(1).is_ok());
}

TEST(Rt, StatsAccumulate) {
  TestCluster tc = cluster(ExecModel::work_queue_async);
  ASSERT_TRUE(tc.client().open(1, "f").is_ok());
  const auto data = pattern(64_KiB, 13);
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(tc.client().write(1, static_cast<std::uint64_t>(i) * data.size(), data).is_ok());
  }
  ASSERT_TRUE(tc.client().fsync(1).is_ok());
  const auto s = tc.server().stats();
  EXPECT_EQ(s.bytes_in, 32 * data.size());
  EXPECT_GE(s.queue_batches, 1u);
  EXPECT_GE(s.queue_max_depth, 1u);
}

TEST(Rt, StopIsIdempotentAndJoinsThreads) {
  TestCluster tc = cluster(ExecModel::work_queue_async);
  ASSERT_TRUE(tc.client().open(1, "f").is_ok());
  tc.stop();
  tc.stop();
  // Client calls now fail cleanly instead of hanging.
  const auto data = pattern(4096, 14);
  EXPECT_FALSE(tc.client().write(1, 0, data).is_ok());
}

}  // namespace
}  // namespace iofwd::rt
