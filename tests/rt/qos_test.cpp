// Per-tenant QoS admission control (DESIGN.md §17): token-bucket governor
// unit tests, the end-to-end demotion path (an over-budget async write is
// staged synchronously — acked late, never lost), cross-shard tenant
// tagging through RoutingClient, and the FaultPlan hook that lets chaos
// tests force admission verdicts deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/units.hpp"
#include "fault/plan.hpp"
#include "obs/metrics.hpp"
#include "rt/qos.hpp"
#include "rt/server.hpp"
#include "testsupport/testsupport.hpp"

namespace iofwd::rt {
namespace {

using namespace std::chrono_literals;
using testsupport::ClusterOptions;
using testsupport::TestCluster;
using testsupport::pattern;

TEST(QosGovernor, BurstAdmitsThenThrottlesThenRefills) {
  obs::MetricRegistry reg;
  QosConfig cfg;
  cfg.bytes_per_sec = 1_MiB;
  cfg.burst_bytes = 64_KiB;
  QosGovernor gov(cfg, reg);

  // The bucket starts full: one burst-sized op sails through.
  EXPECT_TRUE(gov.admit(7, 64_KiB));
  // Drained; the microseconds since the last call earn only a few bytes.
  EXPECT_FALSE(gov.admit(7, 64_KiB));
  EXPECT_EQ(gov.throttled_ops(), 1u);
  EXPECT_EQ(reg.counter("server.qos.7.throttled_ops").value(), 1u);
  EXPECT_EQ(reg.counter("server.qos.admitted_bytes").value(), 64_KiB);

  // 50ms at 1 MiB/s earns >= 51 KiB (sleep_for never wakes early), so a
  // 32 KiB ask must clear after the nap.
  std::this_thread::sleep_for(50ms);
  EXPECT_TRUE(gov.admit(7, 32_KiB));
  EXPECT_EQ(reg.counter("server.qos.7.admitted_bytes").value(), 64_KiB + 32_KiB);
}

TEST(QosGovernor, OpsBucketThrottlesIndependentlyOfBytes) {
  obs::MetricRegistry reg;
  QosConfig cfg;
  cfg.ops_per_sec = 10;  // bytes unlimited
  cfg.burst_ops = 2;
  QosGovernor gov(cfg, reg);

  EXPECT_TRUE(gov.admit(3, 1));
  EXPECT_TRUE(gov.admit(3, 1));
  EXPECT_FALSE(gov.admit(3, 1)) << "third op must wait for an op token";
  // 250ms at 10 ops/s earns >= 2 tokens.
  std::this_thread::sleep_for(250ms);
  EXPECT_TRUE(gov.admit(3, 1));
}

TEST(QosGovernor, TenantsHaveIndependentBuckets) {
  obs::MetricRegistry reg;
  QosConfig cfg;
  cfg.bytes_per_sec = 1_MiB;
  cfg.burst_bytes = 64_KiB;
  QosGovernor gov(cfg, reg);

  ASSERT_TRUE(gov.admit(1, 64_KiB));
  ASSERT_FALSE(gov.admit(1, 64_KiB)) << "tenant 1 blew its own budget";
  // Tenant 2's bucket is untouched by tenant 1's flood.
  EXPECT_TRUE(gov.admit(2, 64_KiB));

  EXPECT_EQ(reg.counter("server.qos.1.throttled_ops").value(), 1u);
  EXPECT_EQ(reg.counter("server.qos.1.admitted_bytes").value(), 64_KiB);
  EXPECT_EQ(reg.counter("server.qos.2.throttled_ops").value(), 0u);
  EXPECT_EQ(reg.counter("server.qos.2.admitted_bytes").value(), 64_KiB);
}

TEST(QosGovernor, ZeroRatesMeanUnlimited) {
  obs::MetricRegistry reg;
  QosGovernor gov(QosConfig{}, reg);  // both rates 0: disabled
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(gov.admit(9, 1_GiB));
  EXPECT_EQ(gov.throttled_ops(), 0u);
}

TEST(Qos, OverBudgetAsyncWritesDemoteToSyncStagingWithDataIntact) {
  // 1 byte/s with a 1-byte burst: every 4 KiB write is over budget, so every
  // async-staged write demotes to sync staging. The client still sees OK on
  // each (acked at completion instead of at enqueue) and the file is intact
  // — QoS slows the hot tenant, it never drops its bytes.
  ClusterOptions o;
  o.server.exec = ExecModel::work_queue_async;
  o.server.qos.bytes_per_sec = 1;
  TestCluster tc(o);
  auto& client = tc.client();

  ASSERT_TRUE(client.open(1, "f").is_ok());
  constexpr std::size_t kOps = 8;
  std::vector<std::byte> golden;
  for (std::size_t i = 0; i < kOps; ++i) {
    const auto chunk = pattern(4_KiB, i + 1);
    ASSERT_TRUE(client.write(1, golden.size(), chunk).is_ok());
    golden.insert(golden.end(), chunk.begin(), chunk.end());
  }
  ASSERT_TRUE(client.fsync(1).is_ok());

  const auto st = tc.server().stats();
  EXPECT_EQ(st.qos_throttled_ops, kOps);
  EXPECT_EQ(st.qos_admitted_bytes, 0u);
  EXPECT_EQ(st.degraded_sync_writes, kOps);

  EXPECT_EQ(tc.drain_and_snapshot("f"), golden);
}

TEST(Qos, WithinBudgetWritesKeepTheFastPath) {
  // Generous budget: nothing throttles, nothing demotes, and the admitted
  // byte count matches what the client pushed.
  ClusterOptions o;
  o.server.exec = ExecModel::work_queue_async;
  o.server.qos.bytes_per_sec = 1_GiB;
  TestCluster tc(o);
  auto& client = tc.client();

  ASSERT_TRUE(client.open(1, "f").is_ok());
  const auto chunk = pattern(64_KiB, 11);
  for (std::size_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(client.write(1, i * chunk.size(), chunk).is_ok());
  }
  ASSERT_TRUE(client.fsync(1).is_ok());

  const auto st = tc.server().stats();
  EXPECT_EQ(st.qos_throttled_ops, 0u);
  EXPECT_EQ(st.qos_admitted_bytes, 4 * 64_KiB);
  EXPECT_EQ(st.degraded_sync_writes, 0u);
}

TEST(Qos, TenantTagPropagatesToEveryShardThroughRoutingClient) {
  // A RoutingClient holds one rt::Client per shard, and each inner hello
  // carries the same cfg.tenant — so one job's writes land in the SAME
  // tenant bucket on whichever shard the descriptor routes to. Proven by
  // accounting: the per-shard server.qos.<tenant>.admitted_bytes counters
  // must sum to exactly the bytes the client wrote, and every shard that
  // owns a file must have taken part.
  ClusterOptions o;
  o.shards = 3;
  o.client.tenant = 42;
  o.server.qos.bytes_per_sec = 1_GiB;  // generous: account, never throttle
  TestCluster tc(o);
  auto& client = tc.client();

  constexpr int kFiles = 8;
  const auto chunk = pattern(4_KiB, 21);
  for (int fd = 1; fd <= kFiles; ++fd) {
    const std::string path = "f" + std::to_string(fd);
    ASSERT_TRUE(client.open(fd, path).is_ok());
    ASSERT_TRUE(client.write(fd, 0, chunk).is_ok());
    ASSERT_TRUE(client.fsync(fd).is_ok());
    ASSERT_TRUE(client.close(fd).is_ok());
  }

  const auto snap = tc.ion_cluster()->metrics();
  std::uint64_t tagged = 0;
  int shards_tagged = 0;
  int shards_with_files = 0;
  for (int s = 0; s < tc.shards(); ++s) {
    const auto val = snap.counter("cluster.shard." + std::to_string(s) +
                                  ".server.qos.42.admitted_bytes");
    tagged += val;
    if (val != 0) ++shards_tagged;
    bool owns_file = false;
    for (int fd = 1; fd <= kFiles; ++fd) {
      if (!tc.mem(s).snapshot("f" + std::to_string(fd)).empty()) owns_file = true;
    }
    if (owns_file) ++shards_with_files;
  }
  EXPECT_EQ(tagged, kFiles * 4_KiB) << "every write must be attributed to tenant 42";
  EXPECT_EQ(shards_tagged, shards_with_files)
      << "a shard holding tenant data must have accounted it under the tenant's bucket";
  EXPECT_GE(shards_tagged, 2) << "8 descriptors over 3 shards should spread";
}

TEST(Qos, FaultHookForcesThrottleVerdictsFromAFaultPlan) {
  // The qos_fault_hook lets a FaultPlan script admission verdicts without
  // configuring rates: rule fires => the write is treated as over budget.
  // Burst of 2 on the first matching call: exactly the first two writes
  // demote, the rest keep the fast path, bytes stay intact either way.
  auto plan = std::make_shared<fault::FaultPlan>();
  plan->add({.op = fault::OpKind::write, .nth = 1, .burst = 2});

  ClusterOptions o;
  o.server.exec = ExecModel::work_queue_async;
  o.server.qos_fault_hook = [plan](std::uint64_t, std::uint64_t) {
    return plan->next(fault::OpKind::write).fired();
  };
  TestCluster tc(o);
  auto& client = tc.client();

  ASSERT_TRUE(client.open(1, "f").is_ok());
  constexpr std::size_t kOps = 4;
  std::vector<std::byte> golden;
  for (std::size_t i = 0; i < kOps; ++i) {
    const auto chunk = pattern(4_KiB, 100 + i);
    ASSERT_TRUE(client.write(1, golden.size(), chunk).is_ok());
    golden.insert(golden.end(), chunk.begin(), chunk.end());
  }
  ASSERT_TRUE(client.fsync(1).is_ok());

  const auto st = tc.server().stats();
  EXPECT_EQ(st.degraded_sync_writes, 2u);
  EXPECT_EQ(st.qos_throttled_ops, 0u) << "the hook is not the governor: no QoS counters";

  EXPECT_EQ(tc.drain_and_snapshot("f"), golden);
}

}  // namespace
}  // namespace iofwd::rt
