// Starvation bound property test (DESIGN.md §17): the fair scheduler keeps
// a quiet tenant's queue wait within a constant factor of its fair share no
// matter how hard one hot tenant floods; FIFO's wait is demonstrably
// unbounded in the flood depth (the regression witness that motivates the
// whole subsystem — the ROADMAP's "one hot client starving a million quiet
// ones" scenario).
//
// The experiment is deterministic and thread-free: virtual time advances by
// the bytes each dequeued op carries (the service cost a fixed-rate device
// would pay), so a quiet op's "queue wait" is the number of service bytes
// dequeued between its arrival and its dispatch. The hot tenant floods H
// large ops before the quiet tenants enqueue anything — the worst
// head-of-line case — and we scale H by 8x:
//
//   * fair:  quiet p99 wait is bounded by a constant factor of the fair
//     share (N_tenants x (quantum + max_op)) and does NOT grow with H;
//   * fifo:  quiet waits sit behind the entire hot backlog — they grow
//     linearly with H, provably past any fixed bound.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <vector>

#include "rt/scheduler.hpp"

namespace iofwd::rt {
namespace {

constexpr std::uint64_t kQuantum = 64 << 10;
constexpr std::uint64_t kHotBytes = 64 << 10;   // each flood op
constexpr std::uint64_t kQuietBytes = 4 << 10;  // each quiet op
constexpr std::uint64_t kQuietTenants = 8;
constexpr std::uint64_t kQuietOps = 16;  // per quiet tenant

struct Item {
  std::uint64_t tenant = 0;
  std::uint64_t bytes = 0;
  std::uint64_t arrival_vt = 0;  // virtual time (bytes served) at push
};

// Flood-then-drain: tenant 0 enqueues H hot ops, then every quiet tenant
// enqueues its ops; the whole backlog is drained in policy order. Returns
// the p99 queue wait (in service bytes) across all quiet-tenant ops.
std::uint64_t quiet_p99_wait(SchedPolicy policy, std::uint64_t hot_ops) {
  auto sched = make_scheduler<Item>(policy, kQuantum);
  const auto now = std::chrono::steady_clock::now();
  const auto push = [&](std::uint64_t tenant, std::uint64_t bytes) {
    SchedMeta m;
    m.tenant = tenant;
    m.bytes = bytes;
    m.arrival = now;
    sched->push(m, Item{tenant, bytes, 0});  // all arrive at virtual time 0
  };
  for (std::uint64_t i = 0; i < hot_ops; ++i) push(0, kHotBytes);
  for (std::uint64_t t = 1; t <= kQuietTenants; ++t) {
    for (std::uint64_t i = 0; i < kQuietOps; ++i) push(t, kQuietBytes);
  }

  std::uint64_t vt = 0;  // virtual time: bytes dequeued so far
  std::vector<std::uint64_t> waits;
  while (sched->size() != 0) {
    const Item it = sched->pop();
    if (it.tenant != 0) waits.push_back(vt - it.arrival_vt);
    vt += it.bytes;
  }
  EXPECT_EQ(waits.size(), kQuietTenants * kQuietOps);
  std::sort(waits.begin(), waits.end());
  return waits[(waits.size() * 99) / 100 - 1];
}

TEST(SchedStarvation, FairKeepsQuietP99WaitWithinAConstantFactorOfFairShare) {
  // Fair-share budget for one quiet tenant's whole backlog: with N
  // continuously backlogged tenants, each DRR round serves this tenant at
  // least one quantum while charging at most (quantum + max_op - 1) bytes
  // per sibling visit. A quiet tenant's last op therefore lands within
  //   rounds x N x (quantum + max_op)
  // service bytes, rounds = ceil(quiet_backlog / quantum). That is the
  // fair share; the test allows a factor-2 constant on top of it.
  const std::uint64_t tenants = kQuietTenants + 1;
  const std::uint64_t rounds = (kQuietOps * kQuietBytes + kQuantum - 1) / kQuantum;
  const std::uint64_t fair_share = rounds * tenants * (kQuantum + kHotBytes);
  const std::uint64_t bound = 2 * fair_share;

  const std::uint64_t small_flood = quiet_p99_wait(SchedPolicy::fair, 256);
  const std::uint64_t big_flood = quiet_p99_wait(SchedPolicy::fair, 2048);

  EXPECT_LE(small_flood, bound);
  EXPECT_LE(big_flood, bound) << "fair p99 wait grew past the fair-share bound under an "
                                 "8x deeper flood";
  // Flood-depth independence: an 8x deeper hot backlog must not move the
  // quiet tenants' p99 by more than measurement slack (identical virtual-
  // time runs: exact equality is expected, 25% is headroom for future
  // policy tweaks).
  EXPECT_LE(big_flood, small_flood + small_flood / 4);
}

TEST(SchedStarvation, FifoQuietWaitGrowsUnboundedWithFloodDepth) {
  const std::uint64_t small_flood = quiet_p99_wait(SchedPolicy::fifo, 256);
  const std::uint64_t big_flood = quiet_p99_wait(SchedPolicy::fifo, 2048);

  // Behind FIFO, every quiet op waits for the whole hot backlog: the wait
  // is at least hot_ops x hot_bytes, so 8x the flood = (>=) 8x the wait
  // floor. No fixed bound can hold — which is precisely the fair bound
  // above, shown violated.
  EXPECT_GE(small_flood, 256 * kHotBytes);
  EXPECT_GE(big_flood, 2048 * kHotBytes);
  EXPECT_GE(big_flood, 7 * small_flood);

  const std::uint64_t tenants = kQuietTenants + 1;
  const std::uint64_t rounds = (kQuietOps * kQuietBytes + kQuantum - 1) / kQuantum;
  const std::uint64_t fair_bound = 2 * rounds * tenants * (kQuantum + kHotBytes);
  EXPECT_GT(big_flood, fair_bound) << "FIFO unexpectedly met the fair-share bound";
}

TEST(SchedStarvation, FairPreservesPerTenantFifoOrder) {
  // Reordering across tenants must never reorder within one: each tenant's
  // ops still complete in arrival order under DRR.
  auto sched = make_scheduler<std::pair<std::uint64_t, std::uint64_t>>(SchedPolicy::fair,
                                                                       kQuantum);
  const auto now = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < 64; ++i) {
    const std::uint64_t tenant = i % 4;
    SchedMeta m;
    m.tenant = tenant;
    m.bytes = 1 + (i * 7919) % (2 * kQuantum);  // mixed sizes incl. > quantum
    m.arrival = now;
    sched->push(m, {tenant, i});
  }
  std::vector<std::uint64_t> last(4, 0);
  std::vector<bool> seen(4, false);
  while (sched->size() != 0) {
    const auto [tenant, id] = sched->pop();
    if (seen[tenant]) {
      EXPECT_GT(id, last[tenant]) << "tenant " << tenant << " reordered";
    }
    seen[tenant] = true;
    last[tenant] = id;
  }
}

}  // namespace
}  // namespace iofwd::rt
