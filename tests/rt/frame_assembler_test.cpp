#include "rt/frame_assembler.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "rt/wire.hpp"

namespace iofwd::rt {
namespace {

// Encode a request frame (header + payload) into a flat byte vector, the way
// a client would put it on the wire.
std::vector<std::byte> frame_bytes(OpCode op, std::span<const std::byte> payload,
                                   std::uint64_t seq = 1) {
  FrameHeader h;
  h.type = MsgType::request;
  h.op = op;
  h.seq = seq;
  h.payload_len = payload.size();
  h.version = 1;
  if (!payload.empty()) h.stamp_payload_crc(payload);
  std::vector<std::byte> out(FrameHeader::kWireSize + payload.size());
  h.encode(std::span<std::byte, FrameHeader::kWireSize>(out.data(), FrameHeader::kWireSize));
  std::memcpy(out.data() + FrameHeader::kWireSize, payload.data(), payload.size());
  return out;
}

// Test double for the server's receive path: stages every payload on the
// heap and records each completed frame.
struct Collector {
  FrameAssembler fsm;
  std::vector<std::pair<FrameHeader, std::vector<std::byte>>> frames;
  std::vector<std::byte> staging;

  Status feed(std::span<const std::byte> bytes) {
    return fsm.feed(
        bytes,
        [&](std::span<const std::byte, FrameHeader::kWireSize> hdr)
            -> Result<FrameAssembler::Sink> {
          auto h = FrameHeader::decode(hdr);
          if (!h.is_ok()) return h.status();
          pending = h.value();
          staging.resize(pending.payload_len);
          return FrameAssembler::Sink{pending.payload_len, staging.data()};
        },
        [&]() -> Status {
          frames.emplace_back(pending, staging);
          return Status::ok();
        });
  }

  FrameHeader pending;
};

TEST(FrameAssembler, WholeFrameInOneFeed) {
  std::vector<std::byte> payload(100, std::byte{0xab});
  const auto wire = frame_bytes(OpCode::write, payload);

  Collector c;
  ASSERT_TRUE(c.feed(wire).is_ok());
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].first.op, OpCode::write);
  EXPECT_EQ(c.frames[0].second, payload);
}

TEST(FrameAssembler, OneBytePerFeedReassemblesIdentically) {
  std::vector<std::byte> payload(257);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::byte>(i);
  const auto wire = frame_bytes(OpCode::write, payload, 9);

  Collector c;
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(c.feed({wire.data() + i, 1}).is_ok());
    // The frame must complete exactly at the last byte, not before.
    EXPECT_EQ(c.frames.size(), i + 1 == wire.size() ? 1u : 0u) << "at byte " << i;
  }
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].first.seq, 9u);
  EXPECT_EQ(c.frames[0].second, payload);
}

TEST(FrameAssembler, SplitAtEveryBoundary) {
  // Cut the wire bytes at every possible single split point; the assembler
  // must produce the identical frame regardless of where the cut lands
  // (mid-header, exactly at the header edge, mid-payload).
  std::vector<std::byte> payload(64, std::byte{0x5c});
  const auto wire = frame_bytes(OpCode::write, payload);
  for (std::size_t cut = 0; cut <= wire.size(); ++cut) {
    Collector c;
    ASSERT_TRUE(c.feed({wire.data(), cut}).is_ok());
    ASSERT_TRUE(c.feed({wire.data() + cut, wire.size() - cut}).is_ok());
    ASSERT_EQ(c.frames.size(), 1u) << "cut at " << cut;
    EXPECT_EQ(c.frames[0].second, payload) << "cut at " << cut;
  }
}

TEST(FrameAssembler, MultipleFramesInOneChunk) {
  std::vector<std::byte> wire;
  for (std::uint64_t s = 1; s <= 3; ++s) {
    std::vector<std::byte> payload(16 * s, static_cast<std::byte>(s));
    auto f = frame_bytes(OpCode::write, payload, s);
    wire.insert(wire.end(), f.begin(), f.end());
  }
  Collector c;
  ASSERT_TRUE(c.feed(wire).is_ok());
  ASSERT_EQ(c.frames.size(), 3u);
  for (std::uint64_t s = 1; s <= 3; ++s) {
    EXPECT_EQ(c.frames[s - 1].first.seq, s);
    EXPECT_EQ(c.frames[s - 1].second.size(), 16 * s);
  }
}

TEST(FrameAssembler, ZeroPayloadFrameCompletesWithoutMoreBytes) {
  const auto wire = frame_bytes(OpCode::fsync, {});
  Collector c;
  ASSERT_TRUE(c.feed(wire).is_ok());
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].first.payload_len, 0u);
  // needed() is back to a fresh header — never zero.
  EXPECT_EQ(c.fsm.needed(), FrameHeader::kWireSize);
}

TEST(FrameAssembler, NeededTracksHeaderThenPayload) {
  std::vector<std::byte> payload(10, std::byte{1});
  const auto wire = frame_bytes(OpCode::write, payload);

  Collector c;
  EXPECT_EQ(c.fsm.needed(), FrameHeader::kWireSize);
  ASSERT_TRUE(c.feed({wire.data(), 20}).is_ok());
  EXPECT_EQ(c.fsm.needed(), FrameHeader::kWireSize - 20);
  ASSERT_TRUE(c.feed({wire.data() + 20, FrameHeader::kWireSize - 20}).is_ok());
  EXPECT_EQ(c.fsm.needed(), payload.size());
  ASSERT_TRUE(c.feed({wire.data() + FrameHeader::kWireSize, 4}).is_ok());
  EXPECT_EQ(c.fsm.needed(), payload.size() - 4);
}

TEST(FrameAssembler, NullSinkSwallowsPayload) {
  // dest == nullptr: consume the payload, store nothing (oversize bounce).
  std::vector<std::byte> payload(128, std::byte{0xee});
  const auto wire = frame_bytes(OpCode::write, payload);

  FrameAssembler fsm;
  int frames = 0;
  auto st = fsm.feed(
      wire,
      [&](std::span<const std::byte, FrameHeader::kWireSize> hdr)
          -> Result<FrameAssembler::Sink> {
        auto h = FrameHeader::decode(hdr);
        EXPECT_TRUE(h.is_ok());
        return FrameAssembler::Sink{h.value().payload_len, nullptr};
      },
      [&]() -> Status {
        ++frames;
        return Status::ok();
      });
  ASSERT_TRUE(st.is_ok());
  EXPECT_EQ(frames, 1);
  EXPECT_EQ(fsm.needed(), FrameHeader::kWireSize);
}

TEST(FrameAssembler, HeaderErrorStopsFeedAndDropsRestOfChunk) {
  std::vector<std::byte> payload(8, std::byte{2});
  auto wire = frame_bytes(OpCode::write, payload);
  wire[5] ^= std::byte{0x01};  // flip a header bit -> header CRC mismatch

  Collector c;
  const Status st = c.feed(wire);
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), Errc::checksum_error);
  EXPECT_TRUE(c.frames.empty());
}

TEST(FrameAssembler, OnFrameErrorPropagates) {
  const auto wire = frame_bytes(OpCode::fsync, {});
  FrameAssembler fsm;
  auto st = fsm.feed(
      wire,
      [&](std::span<const std::byte, FrameHeader::kWireSize>)
          -> Result<FrameAssembler::Sink> { return FrameAssembler::Sink{0, nullptr}; },
      [&]() -> Status { return Status(Errc::shutdown, "client requested shutdown"); });
  EXPECT_EQ(st.code(), Errc::shutdown);
}

TEST(FrameAssembler, ResetDropsPartialFrame) {
  std::vector<std::byte> payload(32, std::byte{3});
  const auto wire = frame_bytes(OpCode::write, payload);

  Collector c;
  ASSERT_TRUE(c.feed({wire.data(), FrameHeader::kWireSize + 5}).is_ok());
  EXPECT_LT(c.fsm.needed(), payload.size());
  c.fsm.reset();
  EXPECT_EQ(c.fsm.needed(), FrameHeader::kWireSize);
  // A whole fresh frame reassembles cleanly after the reset.
  ASSERT_TRUE(c.feed(wire).is_ok());
  ASSERT_EQ(c.frames.size(), 1u);
  EXPECT_EQ(c.frames[0].second, payload);
}

}  // namespace
}  // namespace iofwd::rt
