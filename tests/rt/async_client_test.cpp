#include "rt/async_client.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "rt/server.hpp"

namespace iofwd::rt {
namespace {

struct Harness {
  MemBackend* mem = nullptr;
  std::shared_ptr<fault::FaultPlan> plan = std::make_shared<fault::FaultPlan>();
  std::unique_ptr<IonServer> server;
  std::unique_ptr<AsyncClient> client;

  explicit Harness(ExecModel exec, int window = 16) {
    ServerConfig cfg;
    cfg.exec = exec;
    auto inner = std::make_unique<MemBackend>();
    mem = inner.get();
    auto backend = std::make_unique<fault::FaultyBackend>(std::move(inner), plan);
    server = std::make_unique<IonServer>(std::move(backend), cfg);
    auto [a, b] = InProcTransport::make_pair();
    server->serve(std::move(a));
    client = std::make_unique<AsyncClient>(std::move(b), window);
  }
};

std::vector<std::byte> pattern(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> v(n);
  for (auto& x : v) x = static_cast<std::byte>(rng.next());
  return v;
}

class AsyncClientModels : public ::testing::TestWithParam<ExecModel> {};

TEST_P(AsyncClientModels, PipelinedWritesAllLand) {
  Harness h(GetParam());
  ASSERT_TRUE(h.client->open(1, "p").get().is_ok());
  const auto data = pattern(64_KiB, 1);
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(h.client->write(1, static_cast<std::uint64_t>(i) * data.size(), data));
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().is_ok());
  ASSERT_TRUE(h.client->fsync(1).get().is_ok());
  EXPECT_EQ(h.mem->snapshot("p").size(), 64 * data.size());
  EXPECT_TRUE(h.client->close_fd(1).get().is_ok());
}

TEST_P(AsyncClientModels, InterleavedReadsAndWritesMatch) {
  Harness h(GetParam());
  ASSERT_TRUE(h.client->open(1, "rw").get().is_ok());
  const auto a = pattern(32_KiB, 2);
  const auto b = pattern(32_KiB, 3);
  auto w1 = h.client->write(1, 0, a);
  auto w2 = h.client->write(1, a.size(), b);
  ASSERT_TRUE(w1.get().is_ok());
  ASSERT_TRUE(w2.get().is_ok());
  ASSERT_TRUE(h.client->fsync(1).get().is_ok());
  auto r1 = h.client->read(1, 0, a.size());
  auto r2 = h.client->read(1, a.size(), b.size());
  auto v1 = r1.get();
  auto v2 = r2.get();
  ASSERT_TRUE(v1.is_ok());
  ASSERT_TRUE(v2.is_ok());
  EXPECT_EQ(v1.value(), a);
  EXPECT_EQ(v2.value(), b);
}

TEST_P(AsyncClientModels, WindowLimitsOutstanding) {
  Harness h(GetParam(), /*window=*/4);
  ASSERT_TRUE(h.client->open(1, "w").get().is_ok());
  const auto data = pattern(16_KiB, 4);
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(h.client->write(1, static_cast<std::uint64_t>(i) * data.size(), data));
    EXPECT_LE(h.client->outstanding(), 4u);
  }
  for (auto& f : futures) EXPECT_TRUE(f.get().is_ok());
}

INSTANTIATE_TEST_SUITE_P(Models, AsyncClientModels,
                         ::testing::Values(ExecModel::thread_per_client, ExecModel::work_queue,
                                           ExecModel::work_queue_async),
                         [](const auto& pinfo) { return to_string(pinfo.param); });

TEST(AsyncClient2, DeferredErrorSurfacesOnFsyncFuture) {
  Harness h(ExecModel::work_queue_async);
  ASSERT_TRUE(h.client->open(1, "e").get().is_ok());
  h.plan->fail_always(fault::OpKind::write, Errc::io_error);
  const auto data = pattern(4096, 5);
  EXPECT_TRUE(h.client->write(1, 0, data).get().is_ok()) << "staged ack";
  EXPECT_EQ(h.client->fsync(1).get().code(), Errc::io_error);
}

TEST(AsyncClient2, ShutdownFailsPendingFutures) {
  // A server that never answers: requests pile up, shutdown must fail them.
  auto [a, b] = InProcTransport::make_pair();
  AsyncClient client(std::move(b), 8);
  auto f = client.open(1, "never");
  client.shutdown();
  EXPECT_EQ(f.get().code(), Errc::shutdown);
  a->close();
}

TEST(AsyncClient2, ServerStopFailsInFlight) {
  auto h = std::make_unique<Harness>(ExecModel::work_queue_async);
  ASSERT_TRUE(h->client->open(1, "s").get().is_ok());
  h->server->stop();
  const auto data = pattern(4096, 6);
  auto f = h->client->write(1, 0, data);
  EXPECT_FALSE(f.get().is_ok());
}

TEST(AsyncClient2, SubmitAfterShutdownFailsFast) {
  Harness h(ExecModel::work_queue);
  h.client->shutdown();
  const auto data = pattern(128, 7);
  EXPECT_EQ(h.client->write(1, 0, data).get().code(), Errc::shutdown);
  EXPECT_EQ(h.client->read(1, 0, 128).get().code(), Errc::shutdown);
}

TEST(AsyncClient2, HighConcurrencyStress) {
  Harness h(ExecModel::work_queue_async, /*window=*/32);
  ASSERT_TRUE(h.client->open(1, "stress").get().is_ok());
  const auto data = pattern(8_KiB, 8);
  std::vector<std::future<Status>> futures;
  for (int i = 0; i < 500; ++i) {
    futures.push_back(h.client->write(1, static_cast<std::uint64_t>(i) * data.size(), data));
  }
  int failures = 0;
  for (auto& f : futures) failures += f.get().is_ok() ? 0 : 1;
  EXPECT_EQ(failures, 0);
  ASSERT_TRUE(h.client->fsync(1).get().is_ok());
  EXPECT_EQ(h.mem->snapshot("stress").size(), 500 * data.size());
}

}  // namespace
}  // namespace iofwd::rt
