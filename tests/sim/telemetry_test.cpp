#include "sim/telemetry.hpp"

#include <gtest/gtest.h>

#include "core/units.hpp"

namespace iofwd::sim {
namespace {

Proc<void> busy_consumer(Engine& eng, FluidResource& r, SimTime until) {
  while (eng.now() < until) {
    co_await r.consume(100.0);
  }
}

TEST(Telemetry, TracksFullUtilization) {
  Engine eng;
  FluidResource r(eng, [](int) { return 1.0; }, "r");  // 1 unit/ns
  Telemetry tm(eng, /*period=*/1000);
  tm.track("r", [&r] { return r.total_served(); }, 1.0);
  tm.start();
  eng.spawn(busy_consumer(eng, r, 5000));
  eng.run_until(5000);
  tm.stop();
  eng.run();
  ASSERT_GE(tm.series()[0].utilization.size(), 4u);
  EXPECT_NEAR(tm.mean_utilization("r"), 1.0, 0.05);
}

TEST(Telemetry, IdleResourceReadsZero) {
  Engine eng;
  FluidResource r(eng, [](int) { return 1.0; }, "r");
  Telemetry tm(eng, 1000);
  tm.track("r", [&r] { return r.total_served(); }, 1.0);
  tm.start();
  eng.run_until(4000);
  tm.stop();
  eng.run();
  EXPECT_NEAR(tm.mean_utilization("r"), 0.0, 1e-9);
}

TEST(Telemetry, HalfLoadReadsHalf) {
  Engine eng;
  FluidResource r(eng, [](int) { return 2.0; }, "r");  // capacity 2/ns
  Telemetry tm(eng, 1000);
  // One consumer capped at 1/ns by per-flow fair share? No: single flow gets
  // full 2/ns. Use capacity 2 with consumption rate 2 -> utilization 1; to
  // get half, track with doubled capacity.
  tm.track("r", [&r] { return r.total_served(); }, 4.0);
  tm.start();
  eng.spawn(busy_consumer(eng, r, 4000));
  eng.run_until(4000);
  tm.stop();
  eng.run();
  EXPECT_NEAR(tm.mean_utilization("r"), 0.5, 0.05);
}

TEST(Telemetry, TracksLinkAndCpuAdapters) {
  Engine eng;
  LinkSpec ls;
  ls.bandwidth_mib_s = 100.0;
  Link link(eng, ls, "l");
  CpuPool cpu(eng, CpuSpec{.cores = 2}, "c");
  Telemetry tm(eng, 1000000);
  tm.track_link("link", link);
  tm.track_cpu("cpu", cpu);
  tm.start();
  eng.spawn([](Link& l) -> Proc<void> { co_await l.transfer(1_MiB); }(link));
  eng.run_until(20000000);
  tm.stop();
  eng.run();
  EXPECT_GT(tm.mean_utilization("link"), 0.0);
  EXPECT_EQ(tm.mean_utilization("cpu"), 0.0);
}

TEST(Telemetry, RenderShowsSeries) {
  Engine eng;
  FluidResource r(eng, [](int) { return 1.0; }, "r");
  Telemetry tm(eng, 1000);
  tm.track("tree", [&r] { return r.total_served(); }, 1.0);
  tm.start();
  eng.spawn(busy_consumer(eng, r, 3000));
  eng.run_until(3000);
  tm.stop();
  eng.run();
  const auto out = tm.render();
  EXPECT_NE(out.find("tree"), std::string::npos);
  EXPECT_NE(out.find("mean"), std::string::npos);
}

TEST(Telemetry, MeanOfUnknownSeriesIsZero) {
  Engine eng;
  Telemetry tm(eng, 1000);
  EXPECT_EQ(tm.mean_utilization("nope"), 0.0);
}

}  // namespace
}  // namespace iofwd::sim
