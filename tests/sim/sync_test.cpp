#include "sim/sync.hpp"

#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

namespace iofwd::sim {
namespace {

// --------------------------- SimSemaphore ----------------------------------

Proc<void> take_then_log(Engine& eng, SimSemaphore& sem, int id, std::vector<int>& order,
                         SimTime hold) {
  co_await sem.acquire();
  order.push_back(id);
  co_await Delay{eng, hold};
  sem.release();
}

TEST(SimSemaphore, MutualExclusionAndFifo) {
  Engine eng;
  SimSemaphore sem(eng, 1);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) eng.spawn(take_then_log(eng, sem, i, order, 10));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(eng.now(), 40);  // strictly serialized
  EXPECT_EQ(sem.available(), 1);
}

TEST(SimSemaphore, CountAllowsParallelism) {
  Engine eng;
  SimSemaphore sem(eng, 2);
  std::vector<int> order;
  for (int i = 0; i < 4; ++i) eng.spawn(take_then_log(eng, sem, i, order, 10));
  eng.run();
  EXPECT_EQ(eng.now(), 20);  // two at a time
}

Proc<void> take_n(Engine& eng, SimSemaphore& sem, std::int64_t n, std::vector<std::int64_t>& got) {
  co_await sem.acquire(n);
  got.push_back(n);
  co_return;
}

TEST(SimSemaphore, NoBargePastLargeWaiter) {
  Engine eng;
  SimSemaphore sem(eng, 4);
  std::vector<std::int64_t> got;
  // First a big request that cannot be satisfied, then a small one that
  // could. FIFO fairness demands the small one waits behind the big one.
  eng.spawn(take_n(eng, sem, 10, got));
  eng.spawn(take_n(eng, sem, 1, got));
  eng.run();
  EXPECT_TRUE(got.empty());
  sem.release(6);  // now 10 available
  eng.run();
  EXPECT_EQ(got, (std::vector<std::int64_t>{10}));
  sem.release(10);
  eng.run();
  EXPECT_EQ(got, (std::vector<std::int64_t>{10, 1}));
}

TEST(SimSemaphore, TryAcquire) {
  Engine eng;
  SimSemaphore sem(eng, 3);
  EXPECT_TRUE(sem.try_acquire(2));
  EXPECT_FALSE(sem.try_acquire(2));
  EXPECT_TRUE(sem.try_acquire(1));
  EXPECT_EQ(sem.available(), 0);
}

TEST(SimSemaphore, TryAcquireRespectsWaiters) {
  Engine eng;
  SimSemaphore sem(eng, 0);
  std::vector<std::int64_t> got;
  eng.spawn(take_n(eng, sem, 1, got));
  eng.run();
  sem.release(1);  // reserved for the waiter immediately
  EXPECT_FALSE(sem.try_acquire(1));
  eng.run();
  EXPECT_EQ(got, (std::vector<std::int64_t>{1}));
}

// --------------------------- ScopedSimLock ---------------------------------

Proc<void> scoped_hold(Engine& eng, SimSemaphore& mu, std::vector<int>& order, int id) {
  auto lock = co_await ScopedSimLock::take(mu);
  order.push_back(id);
  co_await Delay{eng, 5};
  // lock released by destructor
}

TEST(ScopedSimLock, ReleasesOnScopeExit) {
  Engine eng;
  SimSemaphore mu(eng, 1);
  std::vector<int> order;
  eng.spawn(scoped_hold(eng, mu, order, 1));
  eng.spawn(scoped_hold(eng, mu, order, 2));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(mu.available(), 1);
}

// ------------------------------ SimEvent -----------------------------------

Proc<void> wait_event(Engine& eng, SimEvent& ev, std::vector<SimTime>& when) {
  co_await ev.wait();
  when.push_back(eng.now());
}

TEST(SimEvent, WakesAllWaiters) {
  Engine eng;
  SimEvent ev(eng);
  std::vector<SimTime> when;
  for (int i = 0; i < 3; ++i) eng.spawn(wait_event(eng, ev, when));
  eng.schedule_at(25, [&] { ev.set(); });
  eng.run();
  EXPECT_EQ(when, (std::vector<SimTime>{25, 25, 25}));
}

TEST(SimEvent, WaitAfterSetIsImmediate) {
  Engine eng;
  SimEvent ev(eng);
  ev.set();
  EXPECT_TRUE(ev.is_set());
  std::vector<SimTime> when;
  eng.spawn(wait_event(eng, ev, when));
  eng.run();
  EXPECT_EQ(when, (std::vector<SimTime>{0}));
}

TEST(SimEvent, DoubleSetIsIdempotent) {
  Engine eng;
  SimEvent ev(eng);
  ev.set();
  EXPECT_NO_THROW(ev.set());
}

// ------------------------------ SimChannel ---------------------------------

Proc<void> consume_all(Engine& eng, SimChannel<int>& ch, std::vector<int>& got) {
  (void)eng;
  while (true) {
    auto v = co_await ch.recv();
    if (!v) break;
    got.push_back(*v);
  }
}

TEST(SimChannel, FifoDelivery) {
  Engine eng;
  SimChannel<int> ch(eng);
  std::vector<int> got;
  eng.spawn(consume_all(eng, ch, got));
  ch.send(1);
  ch.send(2);
  ch.send(3);
  ch.close();
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2, 3}));
}

TEST(SimChannel, ReceiverBlocksUntilSend) {
  Engine eng;
  SimChannel<int> ch(eng);
  std::vector<int> got;
  eng.spawn(consume_all(eng, ch, got));
  eng.run();
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(ch.waiting_receivers(), 1u);
  ch.send(7);
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{7}));
  ch.close();
  eng.run();
}

TEST(SimChannel, MultipleReceiversShareWork) {
  Engine eng;
  SimChannel<int> ch(eng);
  std::vector<int> got_a, got_b;
  eng.spawn(consume_all(eng, ch, got_a));
  eng.spawn(consume_all(eng, ch, got_b));
  eng.run();
  for (int i = 0; i < 10; ++i) ch.send(i);
  ch.close();
  eng.run();
  EXPECT_EQ(got_a.size() + got_b.size(), 10u);
  // FIFO across the union.
  std::vector<int> merged;
  std::merge(got_a.begin(), got_a.end(), got_b.begin(), got_b.end(), std::back_inserter(merged));
  EXPECT_EQ(merged, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(SimChannel, TryRecvDoesNotStealReserved) {
  Engine eng;
  SimChannel<int> ch(eng);
  std::vector<int> got;
  eng.spawn(consume_all(eng, ch, got));
  eng.run();              // receiver now suspended
  ch.send(42);            // item reserved for the suspended receiver
  EXPECT_EQ(ch.try_recv(), std::nullopt);
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{42}));
  ch.close();
  eng.run();
}

TEST(SimChannel, TryRecvTakesUnreserved) {
  Engine eng;
  SimChannel<int> ch(eng);
  ch.send(5);
  EXPECT_EQ(ch.try_recv(), 5);
  EXPECT_EQ(ch.try_recv(), std::nullopt);
}

TEST(SimChannel, CloseWakesAllWithNullopt) {
  Engine eng;
  SimChannel<int> ch(eng);
  std::vector<int> got_a, got_b;
  eng.spawn(consume_all(eng, ch, got_a));
  eng.spawn(consume_all(eng, ch, got_b));
  eng.run();
  ch.close();
  eng.run();
  EXPECT_TRUE(got_a.empty());
  EXPECT_TRUE(got_b.empty());
  EXPECT_TRUE(ch.closed());
}

TEST(SimChannel, DrainsQueueBeforeCloseReturnsNull) {
  Engine eng;
  SimChannel<int> ch(eng);
  ch.send(1);
  ch.send(2);
  ch.close();
  std::vector<int> got;
  eng.spawn(consume_all(eng, ch, got));
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{1, 2}));
}

// ------------------------------ when_all -----------------------------------

Proc<void> delayer(Engine& eng, SimTime d) { co_await Delay{eng, d}; }

Proc<void> join_three(Engine& eng, SimTime& done_at) {
  std::vector<Proc<void>> ps;
  ps.push_back(delayer(eng, 10));
  ps.push_back(delayer(eng, 30));
  ps.push_back(delayer(eng, 20));
  co_await when_all(eng, std::move(ps));
  done_at = eng.now();
}

TEST(WhenAll, CompletesAtMaxOfChildren) {
  Engine eng;
  SimTime done_at = -1;
  eng.spawn(join_three(eng, done_at));
  eng.run();
  EXPECT_EQ(done_at, 30);
}

Proc<void> throws_after(Engine& eng, SimTime d) {
  co_await Delay{eng, d};
  throw std::runtime_error("child failed");
}

Proc<void> join_with_failure(Engine& eng, bool& caught, SimTime& done_at) {
  std::vector<Proc<void>> ps;
  ps.push_back(delayer(eng, 50));
  ps.push_back(throws_after(eng, 10));
  try {
    co_await when_all(eng, std::move(ps));
  } catch (const std::runtime_error&) {
    caught = true;
  }
  done_at = eng.now();
}

TEST(WhenAll, ChildExceptionRethrownAfterAllFinish) {
  Engine eng;
  bool caught = false;
  SimTime done_at = -1;
  eng.spawn(join_with_failure(eng, caught, done_at));
  eng.run();
  EXPECT_TRUE(caught);
  EXPECT_EQ(done_at, 50);  // still waits for the slow child
}

Proc<void> join_empty(Engine& eng, bool& done) {
  co_await when_all(eng, std::vector<Proc<void>>{});
  done = true;
}

TEST(WhenAll, EmptyVectorCompletesImmediately) {
  Engine eng;
  bool done = false;
  eng.spawn(join_empty(eng, done));
  eng.run();
  EXPECT_TRUE(done);
}

Proc<void> join_pair(Engine& eng, SimTime& done_at) {
  co_await when_all(eng, delayer(eng, 7), delayer(eng, 3));
  done_at = eng.now();
}

TEST(WhenAll, BinaryOverload) {
  Engine eng;
  SimTime done_at = -1;
  eng.spawn(join_pair(eng, done_at));
  eng.run();
  EXPECT_EQ(done_at, 7);
}

}  // namespace
}  // namespace iofwd::sim
