#include "sim/fluid.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rng.hpp"
#include "core/units.hpp"
#include "sim/sync.hpp"

namespace iofwd::sim {
namespace {

// Helper: run one consume and record completion time.
Proc<void> one_consume(FluidResource& r, double units, SimTime& done_at, Engine& eng) {
  co_await r.consume(units);
  done_at = eng.now();
}

Proc<void> one_consume_after(Engine& eng, FluidResource& r, SimTime start, double units,
                             SimTime& done_at) {
  co_await Delay{eng, start};
  co_await r.consume(units);
  done_at = eng.now();
}

TEST(FluidResource, SingleFlowServiceTime) {
  Engine eng;
  FluidResource r(eng, [](int) { return 2.0; }, "r");  // 2 units/ns
  SimTime done = -1;
  eng.spawn(one_consume(r, 100.0, done, eng));
  eng.run();
  EXPECT_EQ(done, 50);  // 100 units at 2/ns
  EXPECT_NEAR(r.total_served(), 100.0, 1e-6);
}

TEST(FluidResource, TwoFlowsShareEqually) {
  Engine eng;
  FluidResource r(eng, [](int) { return 2.0; }, "r");
  SimTime d1 = -1, d2 = -1;
  eng.spawn(one_consume(r, 100.0, d1, eng));
  eng.spawn(one_consume(r, 100.0, d2, eng));
  eng.run();
  // Both flows active the whole time, each gets 1 unit/ns.
  EXPECT_EQ(d1, 100);
  EXPECT_EQ(d2, 100);
}

TEST(FluidResource, ShortFlowLeavesLongFlowSpeedsUp) {
  Engine eng;
  FluidResource r(eng, [](int) { return 2.0; }, "r");
  SimTime d_short = -1, d_long = -1;
  eng.spawn(one_consume(r, 50.0, d_short, eng));
  eng.spawn(one_consume(r, 150.0, d_long, eng));
  eng.run();
  // Phase 1: both at 1/ns until short completes at t=50 (served 50 each).
  // Phase 2: long alone at 2/ns for remaining 100 -> 50 ns more.
  EXPECT_EQ(d_short, 50);
  EXPECT_EQ(d_long, 100);
}

TEST(FluidResource, LateArrivalSlowsExisting) {
  Engine eng;
  FluidResource r(eng, [](int) { return 1.0; }, "r");
  SimTime d1 = -1, d2 = -1;
  eng.spawn(one_consume(r, 100.0, d1, eng));
  eng.spawn(one_consume_after(eng, r, 50, 100.0, d2));
  eng.run();
  // Flow 1: alone for 50ns (50 served), then shares 0.5/ns. 50 left -> 100ns
  // more -> completes at 150. Flow 2: 50 served by t=150, then alone at 1/ns
  // for 50 -> completes at 200.
  EXPECT_EQ(d1, 150);
  EXPECT_EQ(d2, 200);
}

TEST(FluidResource, PerFlowCapLimitsSingleFlow) {
  Engine eng;
  FluidResource r(eng, [](int) { return 10.0; }, "r", /*per_flow_cap=*/1.0);
  SimTime done = -1;
  eng.spawn(one_consume(r, 100.0, done, eng));
  eng.run();
  EXPECT_EQ(done, 100);  // capped at 1/ns despite 10/ns capacity
}

TEST(FluidResource, CapacityFunctionSeesFlowCount) {
  Engine eng;
  // Aggregate capacity *drops* with contention: 4 / n per flow.
  FluidResource r(eng, [](int n) { return 4.0 / n; }, "r");
  SimTime d1 = -1, d2 = -1;
  eng.spawn(one_consume(r, 100.0, d1, eng));
  eng.spawn(one_consume(r, 100.0, d2, eng));
  eng.run();
  // n=2 -> total 2, each 1/ns -> both at t=100.
  EXPECT_EQ(d1, 100);
  EXPECT_EQ(d2, 100);
}

TEST(FluidResource, ZeroUnitsIsImmediate) {
  Engine eng;
  FluidResource r(eng, [](int) { return 1.0; }, "r");
  SimTime done = -1;
  eng.spawn(one_consume(r, 0.0, done, eng));
  eng.run();
  EXPECT_EQ(done, 0);
}

TEST(FluidResource, BusyTimeTracksActivity) {
  Engine eng;
  FluidResource r(eng, [](int) { return 1.0; }, "r");
  SimTime d1 = -1, d2 = -1;
  eng.spawn(one_consume(r, 10.0, d1, eng));
  eng.spawn(one_consume_after(eng, r, 100, 10.0, d2));
  eng.run();
  EXPECT_EQ(r.busy_time(), 20);  // two disjoint 10ns busy periods
}

TEST(FluidResource, ManyFlowsAllComplete) {
  Engine eng;
  FluidResource r(eng, [](int) { return 1.0; }, "r");
  std::vector<SimTime> done(64, -1);
  for (int i = 0; i < 64; ++i) eng.spawn(one_consume(r, 64.0, done[i], eng));
  eng.run();
  for (auto d : done) EXPECT_EQ(d, 64 * 64);
  EXPECT_NEAR(r.total_served(), 64.0 * 64.0, 1e-3);
}

// ------------------------------- Link ---------------------------------------

Proc<void> one_transfer(Link& link, std::uint64_t bytes, SimTime& done_at, Engine& eng) {
  co_await link.transfer(bytes);
  done_at = eng.now();
}

TEST(Link, EffectivePeakAccountsHeaders) {
  Engine eng;
  // BG/P tree: 850 MB/s raw ~ 810.6 MiB/s; 26 B headers per 256 B payload
  // -> effective ~ 736 MiB/s (the paper quotes ~731 with its rounding).
  LinkSpec spec;
  spec.bandwidth_mib_s = 850.0 * 1e6 / static_cast<double>(MiB);
  spec.header_bytes_per_unit = 26;
  spec.payload_unit_bytes = 256;
  Link link(eng, spec, "tree");
  EXPECT_NEAR(link.effective_peak_mib_s(), 731.0, 8.0);
}

TEST(Link, TransferTimeMatchesBandwidth) {
  Engine eng;
  LinkSpec spec;
  spec.bandwidth_mib_s = bytes_per_ns_to_mib_per_s(1.0);  // 1 byte/ns
  Link link(eng, spec, "l");
  SimTime done = -1;
  eng.spawn(one_transfer(link, 1000, done, eng));
  eng.run();
  EXPECT_EQ(done, 1000);
}

TEST(Link, LatencyAddsToTransfer) {
  Engine eng;
  LinkSpec spec;
  spec.bandwidth_mib_s = bytes_per_ns_to_mib_per_s(1.0);
  spec.latency_ns = 500;
  Link link(eng, spec, "l");
  SimTime done = -1;
  eng.spawn(one_transfer(link, 1000, done, eng));
  eng.run();
  EXPECT_EQ(done, 1500);
}

TEST(Link, ZeroByteTransferOnlyLatency) {
  Engine eng;
  LinkSpec spec;
  spec.bandwidth_mib_s = 100.0;
  spec.latency_ns = 42;
  Link link(eng, spec, "l");
  SimTime done = -1;
  eng.spawn(one_transfer(link, 0, done, eng));
  eng.run();
  EXPECT_EQ(done, 42);
}

TEST(Link, SharedFairly) {
  Engine eng;
  LinkSpec spec;
  spec.bandwidth_mib_s = bytes_per_ns_to_mib_per_s(2.0);  // 2 bytes/ns
  Link link(eng, spec, "l");
  SimTime d1 = -1, d2 = -1;
  eng.spawn(one_transfer(link, 1000, d1, eng));
  eng.spawn(one_transfer(link, 1000, d2, eng));
  eng.run();
  EXPECT_EQ(d1, 1000);
  EXPECT_EQ(d2, 1000);
  EXPECT_NEAR(link.total_payload_bytes(), 2000.0, 1e-9);
}

TEST(Link, PerFlowCapEnforced) {
  Engine eng;
  LinkSpec spec;
  spec.bandwidth_mib_s = bytes_per_ns_to_mib_per_s(10.0);
  spec.per_flow_cap_mib_s = bytes_per_ns_to_mib_per_s(1.0);
  Link link(eng, spec, "l");
  SimTime done = -1;
  eng.spawn(one_transfer(link, 100, done, eng));
  eng.run();
  EXPECT_EQ(done, 100);
}

// ------------------------------ CpuPool -------------------------------------

TEST(CpuPool, EffectiveCoresShape) {
  Engine eng;
  CpuSpec spec;
  spec.cores = 4;
  spec.share_penalty = 0.18;
  spec.switch_penalty = 0.05;
  CpuPool cpu(eng, spec, "ion");
  // Monotone up to core count...
  EXPECT_DOUBLE_EQ(cpu.effective_cores(1), 1.0);
  EXPECT_GT(cpu.effective_cores(2), cpu.effective_cores(1));
  EXPECT_GT(cpu.effective_cores(4), cpu.effective_cores(2));
  // ...then *decreasing* beyond it (the paper's 8-thread regression, Fig 11).
  EXPECT_LT(cpu.effective_cores(8), cpu.effective_cores(4));
  EXPECT_LT(cpu.effective_cores(16), cpu.effective_cores(8));
  // Sublinear scaling: 4 cores with cache contention < 4x one core.
  EXPECT_LT(cpu.effective_cores(4), 4.0);
}

TEST(CpuPool, NoPenaltiesMeansLinearUpToCores) {
  Engine eng;
  CpuPool cpu(eng, CpuSpec{.cores = 4}, "c");
  EXPECT_DOUBLE_EQ(cpu.effective_cores(1), 1.0);
  EXPECT_DOUBLE_EQ(cpu.effective_cores(4), 4.0);
  EXPECT_DOUBLE_EQ(cpu.effective_cores(100), 4.0);
}

Proc<void> burn(CpuPool& cpu, double cpu_ns, SimTime& done_at, Engine& eng) {
  co_await cpu.consume(cpu_ns);
  done_at = eng.now();
}

TEST(CpuPool, SingleTaskRunsAtOneCore) {
  Engine eng;
  CpuPool cpu(eng, CpuSpec{.cores = 4}, "c");
  SimTime done = -1;
  eng.spawn(burn(cpu, 1000.0, done, eng));
  eng.run();
  EXPECT_EQ(done, 1000);  // 1000 cpu-ns at 1 core
}

TEST(CpuPool, TasksWithinCoreCountRunInParallel) {
  Engine eng;
  CpuPool cpu(eng, CpuSpec{.cores = 4}, "c");
  std::vector<SimTime> done(4, -1);
  for (auto& d : done) eng.spawn(burn(cpu, 1000.0, d, eng));
  eng.run();
  for (auto d : done) EXPECT_EQ(d, 1000);
}

TEST(CpuPool, OversubscriptionSerializes) {
  Engine eng;
  CpuPool cpu(eng, CpuSpec{.cores = 2}, "c");
  std::vector<SimTime> done(4, -1);
  for (auto& d : done) eng.spawn(burn(cpu, 1000.0, d, eng));
  eng.run();
  // 4 tasks x 1000 cpu-ns on 2 cores = 2000 ns wall (fair sharing, no
  // penalties).
  for (auto d : done) EXPECT_EQ(d, 2000);
}

TEST(CpuPool, SwitchPenaltySlowsOversubscribed) {
  Engine eng;
  CpuSpec spec;
  spec.cores = 2;
  spec.switch_penalty = 0.25;
  spec.switch_saturation = 8.0;
  CpuPool cpu(eng, spec, "c");
  std::vector<SimTime> done(4, -1);
  for (auto& d : done) eng.spawn(burn(cpu, 1000.0, d, eng));
  eng.run();
  // excess = 2, saturating overhead = 0.25*2/(1+2/8) = 0.4
  // -> capacity 2/1.4 cores -> 4000 cpu-ns take 2800 ns.
  for (auto d : done) EXPECT_EQ(d, 2800);
}

TEST(CpuPool, SwitchPenaltySaturates) {
  Engine eng;
  CpuSpec spec;
  spec.cores = 4;
  spec.switch_penalty = 0.05;
  spec.switch_saturation = 8.0;
  CpuPool cpu(eng, spec, "c");
  // The loss approaches switch_penalty * saturation = 40% asymptotically.
  const double floor = 4.0 / (1.0 + 0.05 * 8.0);
  EXPECT_GT(cpu.effective_cores(1000), floor * 0.99);
  EXPECT_LT(cpu.effective_cores(1000), 4.0);
  // Still monotone decreasing in the oversubscribed regime.
  EXPECT_GT(cpu.effective_cores(8), cpu.effective_cores(16));
  EXPECT_GT(cpu.effective_cores(16), cpu.effective_cores(64));
}

// Property: the fluid model conserves work — total served equals the sum of
// all demands, for any arrival pattern and capacity curve.
class FluidConservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FluidConservation, TotalServedEqualsTotalDemand) {
  Engine eng;
  // A wobbly capacity curve exercises the recompute paths.
  FluidResource r(
      eng, [](int n) { return 2.0 / (1.0 + 0.05 * n); }, "r");
  iofwd::Rng rng(GetParam());
  double demand = 0;
  std::vector<SimTime> done(40, -1);
  for (int i = 0; i < 40; ++i) {
    const double units = 1.0 + static_cast<double>(rng.below(5000));
    const auto start = static_cast<SimTime>(rng.below(20000));
    demand += units;
    eng.spawn([](Engine& e, FluidResource& res, SimTime at, double u,
                 SimTime& d) -> Proc<void> {
      co_await Delay{e, at};
      co_await res.consume(u);
      d = e.now();
    }(eng, r, start, units, done[i]));
  }
  eng.run();
  for (auto d : done) EXPECT_GE(d, 0) << "every flow must complete";
  EXPECT_NEAR(r.total_served(), demand, 1e-3);
  EXPECT_EQ(r.active(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FluidConservation, ::testing::Values(1u, 2u, 3u, 99u, 12345u));

}  // namespace
}  // namespace iofwd::sim
