#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/process.hpp"

namespace iofwd::sim {
namespace {

TEST(Engine, StartsAtZero) {
  Engine eng;
  EXPECT_EQ(eng.now(), 0);
  EXPECT_EQ(eng.events_pending(), 0u);
}

TEST(Engine, FiresInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), 30);
}

TEST(Engine, TieBrokenByInsertionOrder) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(5, [&] { order.push_back(1); });
  eng.schedule_at(5, [&] { order.push_back(2); });
  eng.schedule_at(5, [&] { order.push_back(3); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine eng;
  std::vector<SimTime> times;
  eng.schedule_at(10, [&] {
    times.push_back(eng.now());
    eng.schedule_after(5, [&] { times.push_back(eng.now()); });
  });
  eng.run();
  EXPECT_EQ(times, (std::vector<SimTime>{10, 15}));
}

TEST(Engine, NegativeDelayClampsToNow) {
  Engine eng;
  SimTime fired = -1;
  eng.schedule_at(10, [&] { eng.schedule_after(-100, [&] { fired = eng.now(); }); });
  eng.run();
  EXPECT_EQ(fired, 10);
}

TEST(Engine, CancelPreventsFiring) {
  Engine eng;
  bool fired = false;
  const auto id = eng.schedule_at(10, [&] { fired = true; });
  eng.cancel(id);
  eng.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(Engine, CancelUnknownIdIsNoop) {
  Engine eng;
  eng.cancel(9999);
  eng.schedule_at(1, [] {});
  EXPECT_EQ(eng.run(), 1u);
}

TEST(Engine, CancelledEventDoesNotBlockOthers) {
  Engine eng;
  std::vector<int> order;
  const auto id = eng.schedule_at(5, [&] { order.push_back(1); });
  eng.schedule_at(5, [&] { order.push_back(2); });
  eng.cancel(id);
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(Engine, RunUntilStopsAtLimit) {
  Engine eng;
  std::vector<int> order;
  eng.schedule_at(10, [&] { order.push_back(1); });
  eng.schedule_at(20, [&] { order.push_back(2); });
  eng.schedule_at(30, [&] { order.push_back(3); });
  eng.run_until(20);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(eng.now(), 20);
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, RunUntilAdvancesTimeEvenWithoutEvents) {
  Engine eng;
  eng.run_until(100);
  EXPECT_EQ(eng.now(), 100);
}

TEST(Engine, StopHaltsTheLoop) {
  Engine eng;
  int count = 0;
  eng.schedule_at(1, [&] { ++count; });
  eng.schedule_at(2, [&] {
    ++count;
    eng.stop();
  });
  eng.schedule_at(3, [&] { ++count; });
  eng.run();
  EXPECT_EQ(count, 2);
  EXPECT_TRUE(eng.stopped());
}

TEST(Engine, ManyEventsStressOrder) {
  Engine eng;
  SimTime last = -1;
  bool monotone = true;
  for (int i = 0; i < 10000; ++i) {
    eng.schedule_at((i * 7919) % 1000, [&] {
      if (eng.now() < last) monotone = false;
      last = eng.now();
    });
  }
  eng.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(eng.events_processed(), 10000u);
}

}  // namespace
}  // namespace iofwd::sim
