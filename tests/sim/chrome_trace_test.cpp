#include "sim/chrome_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "sim/process.hpp"
#include "sim/sync.hpp"

namespace iofwd::sim {
namespace {

TEST(ChromeTrace, SpanRecordsSimulatedDuration) {
  Engine eng;
  ChromeTracer tracer(eng);
  eng.spawn([](Engine& e, ChromeTracer& t) -> Proc<void> {
    auto s = t.span("op", "cn", 3);
    co_await Delay{e, 1500};
  }(eng, tracer));
  eng.run();
  ASSERT_EQ(tracer.event_count(), 1u);
  const std::string j = tracer.to_json();
  EXPECT_NE(j.find(R"("ph":"X")"), std::string::npos);
  EXPECT_NE(j.find(R"("name":"op")"), std::string::npos);
  EXPECT_NE(j.find(R"("tid":3)"), std::string::npos);
  EXPECT_NE(j.find(R"("dur":1.50)"), std::string::npos);  // 1500 ns = 1.5 us
}

TEST(ChromeTrace, InstantAndCounter) {
  Engine eng;
  ChromeTracer tracer(eng);
  tracer.instant("wake", "worker", 1);
  tracer.counter("queue_depth", 12.5);
  const std::string j = tracer.to_json();
  EXPECT_NE(j.find(R"("ph":"i")"), std::string::npos);
  EXPECT_NE(j.find(R"("ph":"C")"), std::string::npos);
  EXPECT_NE(j.find(R"("value":12.5)"), std::string::npos);
}

TEST(ChromeTrace, MovedSpanEmitsOnce) {
  Engine eng;
  ChromeTracer tracer(eng);
  {
    auto a = tracer.span("m", "c", 0);
    auto b = std::move(a);
  }
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(ChromeTrace, ExplicitFinishIsIdempotent) {
  Engine eng;
  ChromeTracer tracer(eng);
  auto s = tracer.span("f", "c", 0);
  s.finish();
  s.finish();
  EXPECT_EQ(tracer.event_count(), 1u);
}

TEST(ChromeTrace, EscapesQuotesInNames) {
  Engine eng;
  ChromeTracer tracer(eng);
  tracer.instant(R"(we"ird)", "c", 0);
  EXPECT_NE(tracer.to_json().find(R"(we\"ird)"), std::string::npos);
}

TEST(ChromeTrace, WritesValidJsonArrayToFile) {
  Engine eng;
  ChromeTracer tracer(eng);
  tracer.counter("x", 1);
  tracer.counter("x", 2);
  const std::string path = "/tmp/iofwd_trace_test.json";
  ASSERT_TRUE(tracer.write_json(path).is_ok());
  std::ifstream f(path);
  std::string all((std::istreambuf_iterator<char>(f)), std::istreambuf_iterator<char>());
  EXPECT_EQ(all.front(), '[');
  EXPECT_EQ(all[all.size() - 2], ']');  // trailing newline
  // Two counter events, comma-separated object list.
  EXPECT_EQ(std::count(all.begin(), all.end(), '{'), 4);  // 2 events + 2 args objects
  EXPECT_EQ(std::count(all.begin(), all.end(), '}'), 4);
  std::remove(path.c_str());
}

TEST(ChromeTrace, EmptyTraceIsEmptyArray) {
  Engine eng;
  ChromeTracer tracer(eng);
  EXPECT_EQ(tracer.to_json(), "[]\n");
}

}  // namespace
}  // namespace iofwd::sim
