#include "sim/process.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.hpp"
#include "sim/sync.hpp"

namespace iofwd::sim {
namespace {

Proc<void> simple_delay(Engine& eng, SimTime d, std::vector<SimTime>& out) {
  co_await Delay{eng, d};
  out.push_back(eng.now());
}

TEST(Process, DetachedProcessRunsAndRecordsTime) {
  Engine eng;
  std::vector<SimTime> out;
  eng.spawn(simple_delay(eng, 42, out));
  eng.run();
  EXPECT_EQ(out, (std::vector<SimTime>{42}));
}

TEST(Process, ZeroDelayIsReady) {
  Engine eng;
  std::vector<SimTime> out;
  eng.spawn(simple_delay(eng, 0, out));
  eng.run();
  EXPECT_EQ(out, (std::vector<SimTime>{0}));
}

Proc<int> returns_value(Engine& eng) {
  co_await Delay{eng, 5};
  co_return 99;
}

Proc<void> awaits_child(Engine& eng, int& result) {
  result = co_await returns_value(eng);
}

TEST(Process, AwaitedChildReturnsValue) {
  Engine eng;
  int result = 0;
  eng.spawn(awaits_child(eng, result));
  eng.run();
  EXPECT_EQ(result, 99);
  EXPECT_EQ(eng.now(), 5);
}

Proc<int> thrower(Engine& eng) {
  co_await Delay{eng, 1};
  throw std::runtime_error("boom");
}

Proc<void> catches_child(Engine& eng, bool& caught) {
  try {
    (void)co_await thrower(eng);
  } catch (const std::runtime_error& e) {
    caught = std::string(e.what()) == "boom";
  }
}

TEST(Process, ChildExceptionPropagatesToParent) {
  Engine eng;
  bool caught = false;
  eng.spawn(catches_child(eng, caught));
  eng.run();
  EXPECT_TRUE(caught);
}

Proc<void> nested_inner(Engine& eng, std::vector<int>& order) {
  order.push_back(1);
  co_await Delay{eng, 10};
  order.push_back(3);
}

Proc<void> nested_outer(Engine& eng, std::vector<int>& order) {
  co_await nested_inner(eng, order);
  order.push_back(4);
}

TEST(Process, NestedCallsRunInline) {
  Engine eng;
  std::vector<int> order;
  eng.spawn(nested_outer(eng, order));
  order.push_back(0);  // spawn is lazy: nothing ran yet
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 4}));
}

Proc<std::string> deep3(Engine& eng) {
  co_await Delay{eng, 1};
  co_return "deep";
}
Proc<std::string> deep2(Engine& eng) { co_return co_await deep3(eng) + "-2"; }
Proc<std::string> deep1(Engine& eng) { co_return co_await deep2(eng) + "-1"; }
Proc<void> deep_root(Engine& eng, std::string& out) { out = co_await deep1(eng); }

TEST(Process, DeepNestingPropagatesValues) {
  Engine eng;
  std::string out;
  eng.spawn(deep_root(eng, out));
  eng.run();
  EXPECT_EQ(out, "deep-2-1");
}

Proc<void> concurrent_worker(Engine& eng, SimTime d, int id, std::vector<int>& order) {
  co_await Delay{eng, d};
  order.push_back(id);
}

TEST(Process, ConcurrentProcessesInterleaveByTime) {
  Engine eng;
  std::vector<int> order;
  eng.spawn(concurrent_worker(eng, 30, 3, order));
  eng.spawn(concurrent_worker(eng, 10, 1, order));
  eng.spawn(concurrent_worker(eng, 20, 2, order));
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Process, ManySpawnsAllComplete) {
  Engine eng;
  std::vector<SimTime> out;
  for (int i = 0; i < 1000; ++i) eng.spawn(simple_delay(eng, i, out));
  eng.run();
  EXPECT_EQ(out.size(), 1000u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
}

}  // namespace
}  // namespace iofwd::sim
