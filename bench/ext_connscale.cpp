// Extension experiment: connection-count scaling of the receiver lanes and
// the asynchronous send path (DESIGN.md §13, §15).
//
// The paper's ZOID daemon multiplexes every compute-node connection over a
// small poll()-driven thread pool instead of burning one receive thread per
// CN; this repo's equivalent is the epoll receiver lane plus the EPOLLOUT
// send queue. The property that makes that design viable is *flat aggregate
// throughput*: 1024 connections must move bytes about as fast as 16, because
// the lanes (not the connection count) bound the per-byte work.
//
// This bench drives 1 -> 1024 in-process connections against one IonServer.
// The harness speaks the wire protocol directly and *pipelines*: each driver
// thread blasts every write frame for a connection back-to-back and reaps
// the 56-byte acks afterwards, the way a real CN-side forwarder batches —
// a Client::write roundtrip per op would serialize on ack latency and
// measure the host scheduler, not the server. Deferred reaping also means
// acks pile up against a full client ring, so the send path's EPOLLOUT
// arming and gathered writev drain are on the hot path of this measurement,
// not an untested corner. Connections are spread over at most
// kMaxDriverThreads driver threads. Aggregate throughput = total payload
// bytes / wall time from a synchronized start until every connection's acks
// (including the fsync barrier reply) are reaped and verified.
//
// Gates (exit 1):
//   * throughput(256 clients)  >= 90% of throughput(16 clients)
//   * throughput(1024 clients) >= 85% of throughput(16 clients)
//   * zero reply-payload memcpys: an untimed read-back phase pulls data back
//     through every connection, and the server's copy counter
//     (server.reply.payload_copy_bytes) must stay 0 — read replies gather
//     straight from BML leases via writev (DESIGN.md §15), so any nonzero
//     value is a staging-copy regression on the data path.
// Each rep measures the whole curve, and the ratio gates take the best
// *paired* ratio across reps — both sides of a ratio come from the same rep,
// measured seconds apart, so time-correlated host noise (the dominant error
// on a small shared box) cancels instead of letting one lucky 16-client rep
// sink the gate. The table reports best-of-reps per point. The 1/4-client
// points are reported for the curve but not gated — absolute speed is
// machine noise, the *shape* is the design property.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/units.hpp"
#include "rt/server.hpp"
#include "rt/transport.hpp"
#include "rt/wire.hpp"

namespace {

using namespace iofwd;

constexpr std::size_t kPipeBytes = 32_KiB;   // per-direction in-proc ring
constexpr std::size_t kWriteBytes = 16_KiB;  // per-op payload
constexpr int kMaxDriverThreads = 16;        // uniform from the 16-client point up

// One raw protocol connection: the client end of an in-proc pair plus its
// sequence counter.
struct RawConn {
  std::unique_ptr<rt::ByteStream> s;
  std::uint64_t next_seq = 1;
};

// Blocking request/reply for the untimed phases (hello, open, read-back,
// close). Returns false on any transport or protocol failure.
bool raw_roundtrip(RawConn& conn, rt::FrameHeader req, std::span<const std::byte> payload,
                   rt::FrameHeader* rep_out, std::vector<std::byte>* payload_out) {
  req.type = rt::MsgType::request;
  req.seq = conn.next_seq++;
  if (!payload.empty() && req.op != rt::OpCode::hello) {
    req.payload_len = payload.size();
    if (req.version >= 1) req.stamp_payload_crc(payload);
  }
  std::byte buf[rt::FrameHeader::kWireSize];
  req.encode(std::span<std::byte, rt::FrameHeader::kWireSize>(buf));
  if (!conn.s->write_all(buf, sizeof buf).is_ok()) return false;
  if (!payload.empty() && !conn.s->write_all(payload.data(), payload.size()).is_ok()) {
    return false;
  }
  std::byte rep_buf[rt::FrameHeader::kWireSize];
  if (!conn.s->read_exact(rep_buf, sizeof rep_buf).is_ok()) return false;
  auto hdr = rt::FrameHeader::decode(
      std::span<const std::byte, rt::FrameHeader::kWireSize>(rep_buf));
  if (!hdr.is_ok() || hdr.value().status != 0) return false;
  if (rep_out != nullptr) *rep_out = hdr.value();
  if (hdr.value().payload_len > 0) {
    if (payload_out == nullptr) return false;
    payload_out->resize(hdr.value().payload_len);
    if (!conn.s->read_exact(payload_out->data(), payload_out->size()).is_ok()) return false;
  }
  return true;
}

// Aggregate MiB/s for one run of `clients` concurrent connections, each
// issuing `writes` kWriteBytes writes and one fsync barrier. After the timed
// run, every connection reads one payload back (untimed) so read replies
// exercise the gathered zero-copy send path; the server's reply-copy counter
// is accumulated into `copy_bytes` for the zero-copy gate.
double aggregate_mibs(int clients, int writes, std::uint64_t& copy_bytes) {
  double best = 0.0;
  const std::vector<std::byte> chunk(kWriteBytes, std::byte{0x5a});
  // Every write carries the same payload, so its CRC is stamped once here
  // and reused in every frame (a real forwarder would pay one CRC pass per
  // distinct buffer too).
  rt::FrameHeader wtmpl;
  wtmpl.type = rt::MsgType::request;
  wtmpl.op = rt::OpCode::write;
  wtmpl.version = rt::kProtoVersion;
  wtmpl.payload_len = kWriteBytes;
  wtmpl.stamp_payload_crc(chunk);

  {
    rt::ServerConfig scfg;
    scfg.exec = rt::ExecModel::work_queue_async;
    scfg.bml_bytes = 64_MiB;
    rt::IonServer server(std::make_unique<rt::MemBackend>(), scfg);

    std::vector<RawConn> conns(static_cast<std::size_t>(clients));
    bool setup_ok = true;
    for (int c = 0; c < clients; ++c) {
      auto [s, cl] = rt::InProcTransport::make_pair(kPipeBytes);
      server.serve(std::move(s));
      conns[static_cast<std::size_t>(c)].s = std::move(cl);

      rt::FrameHeader hello;
      hello.op = rt::OpCode::hello;
      hello.version = rt::kProtoVersion;
      rt::FrameHeader hello_rep;
      setup_ok = raw_roundtrip(conns[static_cast<std::size_t>(c)], hello, {}, &hello_rep, nullptr);
      if (!setup_ok) break;

      rt::FrameHeader open;
      open.op = rt::OpCode::open;
      open.fd = c + 1;
      open.version = std::min(hello_rep.version, rt::kProtoVersion);
      const std::string path = "conn" + std::to_string(c);
      setup_ok = raw_roundtrip(conns[static_cast<std::size_t>(c)], open,
                               std::as_bytes(std::span(path.data(), path.size())), nullptr,
                               nullptr);
      if (!setup_ok) break;
    }
    if (!setup_ok) {
      std::fprintf(stderr, "connection setup failed\n");
      return 0.0;
    }

    const int drivers = std::min(clients, kMaxDriverThreads);
    std::atomic<bool> go{false};
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(drivers));
    for (int d = 0; d < drivers; ++d) {
      threads.emplace_back([&, d] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        // Phase 1: blast every frame for this driver's strided slice. Acks
        // accumulate in each connection's reply ring / server send queue
        // (bounded: (writes + 1) 56-byte headers per connection).
        std::byte hdr[rt::FrameHeader::kWireSize];
        for (int c = d; c < clients; c += drivers) {
          RawConn& conn = conns[static_cast<std::size_t>(c)];
          rt::FrameHeader req = wtmpl;
          req.fd = c + 1;
          for (int i = 0; i < writes; ++i) {
            req.seq = conn.next_seq++;
            req.offset = static_cast<std::uint64_t>(i) * kWriteBytes;
            req.encode(std::span<std::byte, rt::FrameHeader::kWireSize>(hdr));
            if (!conn.s->write_all(hdr, sizeof hdr).is_ok() ||
                !conn.s->write_all(chunk.data(), chunk.size()).is_ok()) {
              failures.fetch_add(1, std::memory_order_relaxed);
              return;
            }
          }
          rt::FrameHeader fsync;
          fsync.type = rt::MsgType::request;
          fsync.op = rt::OpCode::fsync;
          fsync.fd = c + 1;
          fsync.version = rt::kProtoVersion;
          fsync.seq = conn.next_seq++;
          fsync.encode(std::span<std::byte, rt::FrameHeader::kWireSize>(hdr));
          if (!conn.s->write_all(hdr, sizeof hdr).is_ok()) {
            failures.fetch_add(1, std::memory_order_relaxed);
            return;
          }
        }
        // Phase 2: reap and verify every ack (writes + fsync barrier per
        // connection). The clock stops only after the server has proven all
        // ops done — and draining the full rings here is what fires the
        // EPOLLOUT edges the send path parked on.
        for (int c = d; c < clients; c += drivers) {
          RawConn& conn = conns[static_cast<std::size_t>(c)];
          for (int i = 0; i < writes + 1; ++i) {
            std::byte rep[rt::FrameHeader::kWireSize];
            if (!conn.s->read_exact(rep, sizeof rep).is_ok()) {
              failures.fetch_add(1, std::memory_order_relaxed);
              return;
            }
            auto h = rt::FrameHeader::decode(
                std::span<const std::byte, rt::FrameHeader::kWireSize>(rep));
            if (!h.is_ok() || h.value().status != 0) {
              failures.fetch_add(1, std::memory_order_relaxed);
              return;
            }
          }
        }
      });
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    if (failures.load() != 0) {
      std::fprintf(stderr, "%d driver failures at %d clients\n", failures.load(), clients);
      return 0.0;
    }

    // Untimed read-back: one full payload per connection. The reply path
    // must serve these from BML leases with zero staging copies.
    std::atomic<int> read_failures{0};
    threads.clear();
    for (int d = 0; d < drivers; ++d) {
      threads.emplace_back([&, d] {
        for (int c = d; c < clients; c += drivers) {
          RawConn& conn = conns[static_cast<std::size_t>(c)];
          rt::FrameHeader req;
          req.op = rt::OpCode::read;
          req.fd = c + 1;
          req.version = rt::kProtoVersion;
          req.payload_len = kWriteBytes;  // requested length; no payload sent
          rt::FrameHeader rep;
          std::vector<std::byte> data;
          if (!raw_roundtrip(conn, req, {}, &rep, &data) || data.size() != kWriteBytes ||
              data[0] != std::byte{0x5a} || !rep.payload_crc_ok(data)) {
            read_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    if (read_failures.load() != 0) {
      std::fprintf(stderr, "read-back failed on %d of %d connections\n", read_failures.load(),
                   clients);
      return 0.0;
    }

    for (int c = 0; c < clients; ++c) {
      rt::FrameHeader cls;
      cls.op = rt::OpCode::close;
      cls.fd = c + 1;
      cls.version = rt::kProtoVersion;
      (void)raw_roundtrip(conns[static_cast<std::size_t>(c)], cls, {}, nullptr, nullptr);
    }
    copy_bytes += server.stats().reply_payload_copy_bytes;
    server.stop();

    const double total_mib = static_cast<double>(clients) * writes *
                             static_cast<double>(kWriteBytes) / (1 << 20);
    best = std::max(best, total_mib / secs);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const int reps = args.quick ? 2 : 3;
  // Constant total volume per point: every point pushes the same number of
  // bytes through the server, split across however many connections, so the
  // ratio compares steady-state multiplexing — not per-connection setup.
  const std::uint64_t total_bytes = (args.quick ? 64 : 256) * std::uint64_t{1_MiB};

  const int points[] = {1, 4, 16, 64, 256, 1024};
  int writes[std::size(points)];
  for (std::size_t i = 0; i < std::size(points); ++i) {
    // Floor of 32 writes/connection: at the 1024-client point the constant
    // volume would leave only a handful of writes per connection, and the
    // measurement would be mostly per-connection barriers instead of steady
    // state. Keep (writes + 1) * 56 bytes well under the server's
    // send_queue_bytes bound — deferred reaping parks that many ack bytes
    // per connection.
    writes[i] = std::max(32, static_cast<int>(total_bytes / (static_cast<std::uint64_t>(points[i]) *
                                                             kWriteBytes)));
  }

  // Rep-by-rep over the whole curve: each gate ratio is computed within one
  // rep (numerator and denominator seconds apart), and the gates take the
  // best paired ratio — time-correlated host noise cancels. The table shows
  // best-of-reps per point.
  double mibs[std::size(points)] = {};
  double ratio256 = 0.0;
  double ratio1k = 0.0;
  std::uint64_t copy_bytes = 0;
  for (int r = 0; r < reps; ++r) {
    double rep_mibs[std::size(points)];
    for (std::size_t i = 0; i < std::size(points); ++i) {
      rep_mibs[i] = aggregate_mibs(points[i], writes[i], copy_bytes);
      mibs[i] = std::max(mibs[i], rep_mibs[i]);
    }
    if (rep_mibs[2] > 0) {
      ratio256 = std::max(ratio256, rep_mibs[4] / rep_mibs[2]);
      ratio1k = std::max(ratio1k, rep_mibs[5] / rep_mibs[2]);
    }
  }

  analysis::DiagTable t("ext_connscale: aggregate write throughput vs connection count");
  for (std::size_t i = 0; i < std::size(points); ++i) {
    t.add(std::to_string(points[i]) + " clients", mibs[i],
          "MiB/s aggregate, " + std::to_string(writes[i]) + " x " + bench::mib(kWriteBytes) +
              " writes/client, best of " + std::to_string(reps));
  }
  t.add("256/16 ratio", ratio256, "gate: >= 0.90, best paired rep (lanes must not collapse)");
  t.add("1024/16 ratio", ratio1k, "gate: >= 0.85, best paired rep (send queues must hold)");
  t.add("reply copy bytes", static_cast<double>(copy_bytes),
        "gate: == 0 (replies gather from leases, no staging memcpy)");
  std::fputs(t.render().c_str(), stdout);

  bool ok = true;
  if (ratio256 < 0.90) {
    std::fprintf(stderr, "FAIL: 256-client throughput is %.1f%% of the 16-client point (< 90%%)\n",
                 100.0 * ratio256);
    ok = false;
  }
  if (ratio1k < 0.85) {
    std::fprintf(stderr, "FAIL: 1024-client throughput is %.1f%% of the 16-client point (< 85%%)\n",
                 100.0 * ratio1k);
    ok = false;
  }
  if (copy_bytes != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu reply payload bytes were memcpy'd — the read data path must be "
                 "zero-copy\n",
                 static_cast<unsigned long long>(copy_bytes));
    ok = false;
  }
  if (!ok) return 1;
  std::printf(
      "PASS: throughput holds at %.1f%% (256) / %.1f%% (1024) of the 16-client point, "
      "0 reply copy bytes\n",
      100.0 * ratio256, 100.0 * ratio1k);
  return 0;
}
