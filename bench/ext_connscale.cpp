// Extension experiment: connection-count scaling of the receiver lanes
// (DESIGN.md §13).
//
// The paper's ZOID daemon multiplexes every compute-node connection over a
// small poll()-driven thread pool instead of burning one receive thread per
// CN; this repo's equivalent is the epoll receiver lane. The property that
// makes that design viable is *flat aggregate throughput*: 256 connections
// must move bytes about as fast as 16, because the lanes (not the
// connection count) bound the receive-side work.
//
// This bench drives 1 -> 256 in-process clients against one IonServer.
// Every client pushes the same number of fixed-size writes from its own
// thread; aggregate throughput = total payload bytes / wall time from a
// synchronized start to the last client's fsync barrier. Pipes are kept
// small (64 KiB) so 256 connections stay modest in memory and the server
// actually has to multiplex — a huge pipe would let clients buffer their
// whole run without a single receiver wakeup.
//
// Gate (exit 1): throughput(256 clients) >= 90% of throughput(16 clients),
// best-of-reps on both sides. The 1/4-client points are reported for the
// curve but not gated — absolute speed is machine noise, the *shape* is the
// design property.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/units.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace {

using namespace iofwd;

constexpr std::size_t kPipeBytes = 64_KiB;   // per-direction in-proc ring
constexpr std::size_t kWriteBytes = 16_KiB;  // per-op payload

// Aggregate MiB/s for `clients` concurrent connections, each issuing
// `writes` kWriteBytes writes and one fsync barrier.
double aggregate_mibs(int clients, int writes, int reps) {
  double best = 0.0;
  const std::vector<std::byte> chunk(kWriteBytes, std::byte{0x5a});
  for (int r = 0; r < reps; ++r) {
    rt::ServerConfig scfg;
    scfg.exec = rt::ExecModel::work_queue_async;
    scfg.bml_bytes = 64_MiB;
    rt::IonServer server(std::make_unique<rt::MemBackend>(), scfg);

    std::vector<std::unique_ptr<rt::Client>> cs;
    cs.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      auto [s, cl] = rt::InProcTransport::make_pair(kPipeBytes);
      server.serve(std::move(s));
      cs.push_back(std::make_unique<rt::Client>(std::move(cl)));
      if (!cs.back()->open(c + 1, "conn" + std::to_string(c)).is_ok()) {
        std::fprintf(stderr, "open failed for client %d\n", c);
        return 0.0;
      }
    }

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(clients));
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        rt::Client& cl = *cs[static_cast<std::size_t>(c)];
        for (int i = 0; i < writes; ++i) {
          (void)cl.write(c + 1, static_cast<std::uint64_t>(i) * kWriteBytes, chunk);
        }
        (void)cl.fsync(c + 1);  // barrier: async acks land before the clock stops
      });
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    for (int c = 0; c < clients; ++c) (void)cs[static_cast<std::size_t>(c)]->close(c + 1);
    server.stop();

    const double total_mib = static_cast<double>(clients) * writes *
                             static_cast<double>(kWriteBytes) / (1 << 20);
    best = std::max(best, total_mib / secs);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const int reps = args.quick ? 2 : 3;
  // Constant total volume per point: every point pushes the same number of
  // bytes through the server, split across however many connections, so the
  // ratio compares steady-state multiplexing — not per-connection setup.
  const std::uint64_t total_bytes = (args.quick ? 64 : 256) * std::uint64_t{1_MiB};

  const int points[] = {1, 4, 16, 64, 256};
  double mibs[std::size(points)] = {};
  analysis::DiagTable t("ext_connscale: aggregate write throughput vs connection count");
  for (std::size_t i = 0; i < std::size(points); ++i) {
    const int clients = points[i];
    const int writes = std::max(
        8, static_cast<int>(total_bytes / (static_cast<std::uint64_t>(clients) * kWriteBytes)));
    mibs[i] = aggregate_mibs(clients, writes, reps);
    t.add(std::to_string(clients) + " clients", mibs[i],
          "MiB/s aggregate, " + std::to_string(writes) + " x " + bench::mib(kWriteBytes) +
              " writes/client, best of " + std::to_string(reps));
  }

  const double t16 = mibs[2];
  const double t256 = mibs[4];
  const double ratio = t16 > 0 ? t256 / t16 : 0.0;
  t.add("256/16 ratio", ratio, "gate: >= 0.90 (receiver lanes must not collapse)");
  std::fputs(t.render().c_str(), stdout);

  if (ratio < 0.90) {
    std::fprintf(stderr, "FAIL: 256-client throughput is %.1f%% of the 16-client point (< 90%%)\n",
                 100.0 * ratio);
    return 1;
  }
  std::printf("PASS: 256-client throughput holds at %.1f%% of the 16-client point\n",
              100.0 * ratio);
  return 0;
}
