// Extension experiment: multi-ION cluster scaling (DESIGN.md §14).
//
// The paper scales one ION against its pset; the cluster subsystem scales
// the ION count itself. This bench holds the client population fixed at 64
// RoutingClients and grows the fleet 1 -> 8 IonServer shards, with every
// shard's backend modeling a device of fixed per-shard service capacity
// (a ~120 µs sleep per backend write over a MemBackend, executed by the
// shard's synchronous work queue). One shard therefore serializes the whole
// population through one device; eight shards serve eight devices in
// parallel — the aggregate must scale with the fleet, not the client count.
//
// Each client opens 8 descriptors (a fixed workload shape, independent of
// the fleet size); rendezvous hashing spreads those descriptors across
// however many shards exist, so the *same* workload rebalances itself as
// the fleet grows — exactly what the RoutingClient promises.
//
// Gate (exit 1): aggregate throughput at 8 shards >= 3x the 1-shard point,
// best-of-reps on both sides. The latency-bound backend keeps the gate
// about service-capacity scaling, not host core count.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "cluster/ion_cluster.hpp"
#include "cluster/routing_client.hpp"
#include "core/units.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace {

using namespace iofwd;

constexpr int kClients = 64;
constexpr int kFdsPerClient = 8;
constexpr std::size_t kPipeBytes = 64_KiB;
constexpr std::size_t kWriteBytes = 16_KiB;
constexpr auto kDeviceLatency = std::chrono::microseconds(120);

// A fixed-service-rate device: every write costs kDeviceLatency before the
// MemBackend absorbs it. With a synchronous work queue in front, this is
// the per-shard bottleneck the fleet multiplies.
class SlowBackend final : public rt::IoBackend {
 public:
  Status open(int fd, const std::string& path) override { return mem_.open(fd, path); }
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override {
    std::this_thread::sleep_for(kDeviceLatency);
    return mem_.write(fd, offset, data);
  }
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override {
    return mem_.read(fd, offset, out);
  }
  Status fsync(int fd) override { return mem_.fsync(fd); }
  Status close(int fd) override { return mem_.close(fd); }
  Result<std::uint64_t> size(int fd) override { return mem_.size(fd); }

 private:
  rt::MemBackend mem_;
};

// Aggregate MiB/s: 64 clients, each writing `writes` x 16 KiB round-robin
// across its 8 descriptors, against a `shards`-wide cluster.
double aggregate_mibs(int shards, int writes, int reps) {
  double best = 0.0;
  const std::vector<std::byte> chunk(kWriteBytes, std::byte{0x5a});
  for (int r = 0; r < reps; ++r) {
    cluster::IonClusterConfig ccfg;
    ccfg.shards = shards;
    ccfg.server.exec = rt::ExecModel::work_queue;  // the device is the bottleneck
    ccfg.server.workers = 1;
    ccfg.server.bml_bytes = 64_MiB;
    cluster::IonCluster fleet([](int) { return std::make_unique<SlowBackend>(); }, ccfg);

    std::vector<std::unique_ptr<cluster::RoutingClient>> cs;
    cs.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      std::vector<cluster::RoutingClient::ShardLink> links;
      for (int s = 0; s < shards; ++s) {
        auto [srv, cl] = rt::InProcTransport::make_pair(kPipeBytes);
        fleet.serve(s, std::move(srv));
        cluster::RoutingClient::ShardLink link;
        link.stream = std::move(cl);
        links.push_back(std::move(link));
      }
      cs.push_back(std::make_unique<cluster::RoutingClient>(std::move(links)));
      for (int f = 0; f < kFdsPerClient; ++f) {
        const int fd = 1 + c * kFdsPerClient + f;
        if (!cs.back()->open(fd, "clu" + std::to_string(fd)).is_ok()) {
          std::fprintf(stderr, "open failed for client %d fd %d\n", c, fd);
          return 0.0;
        }
      }
    }

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kClients);
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        cluster::RoutingClient& cl = *cs[static_cast<std::size_t>(c)];
        for (int i = 0; i < writes; ++i) {
          const int fd = 1 + c * kFdsPerClient + i % kFdsPerClient;
          (void)cl.write(fd, static_cast<std::uint64_t>(i / kFdsPerClient) * kWriteBytes,
                         chunk);
        }
        // Barrier on every descriptor: async acks land before the clock stops.
        for (int f = 0; f < kFdsPerClient; ++f) {
          (void)cl.fsync(1 + c * kFdsPerClient + f);
        }
      });
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    fleet.stop();
    const double total_mib =
        static_cast<double>(kClients) * writes * static_cast<double>(kWriteBytes) / (1 << 20);
    best = std::max(best, total_mib / secs);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const int reps = args.quick ? 1 : 3;
  // Constant total volume per point; enough writes per client that every
  // shard point spends its time in steady state, not setup.
  const int writes = args.quick ? 24 : 96;

  const int points[] = {1, 2, 4, 8};
  double mibs[std::size(points)] = {};
  analysis::DiagTable t("ext_cluster: aggregate throughput vs ION shard count (64 clients)");
  for (std::size_t i = 0; i < std::size(points); ++i) {
    mibs[i] = aggregate_mibs(points[i], writes, reps);
    t.add(std::to_string(points[i]) + " shards", mibs[i],
          "MiB/s aggregate, " + std::to_string(kClients) + " clients x " +
              std::to_string(writes) + " x " + bench::mib(kWriteBytes) +
              " writes, best of " + std::to_string(reps));
  }

  const double ratio = mibs[0] > 0 ? mibs[3] / mibs[0] : 0.0;
  t.add("8/1 ratio", ratio, "gate: >= 3.0 (the fleet must scale service capacity)");
  std::fputs(t.render().c_str(), stdout);

  if (ratio < 3.0) {
    std::fprintf(stderr, "FAIL: 8-shard throughput is only %.2fx the 1-shard point (< 3x)\n",
                 ratio);
    return 1;
  }
  std::printf("PASS: 8 shards deliver %.2fx the 1-shard aggregate\n", ratio);
  return 0;
}
