// Extension experiment: two-phase collective I/O vs the forwarding layer.
//
// 64 CNs write a block-cyclic shared file of 64 KiB pieces. Independent
// I/O forwards each small piece (paying the two-step control exchange per
// piece, Sec. V-A2); collective I/O redistributes over the torus first and
// forwards few large writes from 8 aggregators.
//
// Question: how much of collective buffering's benefit is really a
// workaround for a slow forwarding layer? Answer below: the better the
// forwarding mechanism, the smaller the collective-I/O win.
#include "bench_common.hpp"
#include "wl/collective.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto cfg = bgp::MachineConfig::intrepid();

  wl::CollectiveParams p;
  p.pieces_per_cn = args.iters(64);

  analysis::FigureReport rep("ext_collective",
                             "Two-phase collective I/O vs forwarding mechanism (64 KiB pieces)",
                             "mechanism");
  for (auto m : bench::kMechanisms) {
    for (auto mode : {wl::IoMode::independent, wl::IoMode::collective}) {
      const auto r = wl::run_collective(m, mode, cfg, {}, p);
      rep.add(proto::to_string(m), wl::to_string(mode), r.throughput_mib_s);
    }
  }
  analysis::emit(rep);

  for (auto m : bench::kMechanisms) {
    const double ind = *rep.get(proto::to_string(m), "independent");
    const double col = *rep.get(proto::to_string(m), "collective");
    std::printf("%-18s collective vs independent: %+.0f%%\n", proto::to_string(m).c_str(),
                100.0 * (col / ind - 1.0));
  }
  return 0;
}
