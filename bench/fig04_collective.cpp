// Figure 4: performance of collective-network streaming from compute nodes
// to the I/O node (writes forwarded to /dev/null, executed on the ION).
//
// Paper observations reproduced here:
//   * throughput rises with message size (control exchange amortizes);
//   * peaks between 4 and 8 CNs, degrades beyond 32 (ION contention);
//   * sustains ~680 MiB/s (93% of the 731 MiB/s effective peak) at 1 MiB;
//   * ZOID edges CIOD by a couple of percent (threads vs processes).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto cfg = bgp::MachineConfig::intrepid();

  analysis::FigureReport rep("fig04", "Collective network streaming CN -> ION (/dev/null)",
                             "CNs");

  const std::uint64_t sizes[] = {64_KiB, 256_KiB, 1_MiB};
  for (int ncn : {1, 2, 4, 8, 16, 32, 64}) {
    wl::StreamParams p;
    p.cns_per_pset = ncn;
    p.iterations = args.iters(500);
    p.sink = proto::SinkTarget::Kind::dev_null;
    for (auto sz : sizes) {
      p.message_bytes = sz;
      const double t =
          wl::max_of_runs(proto::Mechanism::ciod, cfg, {}, p, args.runs);
      rep.add(std::to_string(ncn), "CIOD " + bench::mib(sz), t);
    }
    p.message_bytes = 1_MiB;
    rep.add(std::to_string(ncn), "ZOID 1MiB",
            wl::max_of_runs(proto::Mechanism::zoid, cfg, {}, p, args.runs));
  }

  // Paper anchors: effective peak ~731; sustained ~680 at 1 MiB for 4-8 CNs.
  rep.add_expected("4", "CIOD 1MiB", 680);
  rep.add_expected("8", "CIOD 1MiB", 680);
  rep.add_expected("4", "ZOID 1MiB", 694);  // ~2% over CIOD

  analysis::emit(rep);
  std::printf("effective tree peak (after headers): %.1f MiB/s (paper ~731)\n",
              cfg.tree_effective_peak_mib_s());
  return 0;
}
