// Extension experiment: compute/checkpoint overlap.
//
// The paper's motivation (Sec. I): faster forwarding "accelerate[s] the
// time to solution or [lets researchers] apply more complex models during
// the same time frame". A bulk-synchronous application on 64 CNs (barrier
// every cycle, as real codes have) alternates 400 ms of computation with a
// 4 MiB-per-CN checkpoint; the table shows how much of the checkpoint each
// mechanism hides behind computation.
#include "bench_common.hpp"
#include "wl/checkpoint.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto cfg = bgp::MachineConfig::intrepid();

  wl::CheckpointParams p;
  p.cycles = args.iters(50);

  analysis::FigureReport rep("ext_checkpoint",
                             "Compute/checkpoint cycles: I/O overhead over pure compute",
                             "mechanism", "see series");
  for (auto m : bench::kMechanisms) {
    const auto r = wl::run_checkpoint(m, cfg, {}, p);
    const auto x = proto::to_string(m);
    rep.add(x, "total time s", r.total_time_s);
    rep.add(x, "io overhead %", r.io_overhead_pct);
    rep.add(x, "checkpoint MiB/s", r.aggregate_mib_s);
  }
  analysis::emit(rep);

  const double sync_ovh = *rep.get("ZOID", "io overhead %");
  const double async_ovh = *rep.get("ZOID+sched+async", "io overhead %");
  std::printf(
      "asynchronous staging removes %.0f%% of ZOID's checkpoint stall: the burst is\n"
      "absorbed into BML buffers and drains to storage during the next compute phase.\n"
      "What remains is the CN->ION staging copy over the collective network (Sec. IV).\n",
      100.0 * (1.0 - async_ovh / sync_ovh));
  return 0;
}
