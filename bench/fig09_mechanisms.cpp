// Figure 9: end-to-end throughput as the number of CNs concurrently writing
// 1 MiB messages grows, comparing all four forwarding mechanisms
// (4 worker threads for the scheduled ones).
//
// Paper headlines at 32 CNs: I/O scheduling gives +38% over CIOD and +23%
// over ZOID (83% efficiency); adding asynchronous data staging gives +57%
// over CIOD, +40% over ZOID, ~95% of the achievable maximum.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto cfg = bgp::MachineConfig::intrepid();
  proto::ForwarderConfig fc;
  fc.workers = 4;

  analysis::FigureReport rep("fig09", "End-to-end throughput by mechanism (1 MiB, 4 workers)",
                             "CNs");
  for (int ncn : {1, 2, 4, 8, 16, 32, 64}) {
    wl::StreamParams p;
    p.cns_per_pset = ncn;
    p.iterations = args.iters(1000);
    for (auto m : bench::kMechanisms) {
      rep.add(std::to_string(ncn), proto::to_string(m),
              wl::max_of_runs(m, cfg, fc, p, args.runs));
    }
  }
  // Paper anchors at 32 CNs (derived from the quoted percentages and the
  // 650 MiB/s bound): CIOD ~390, ZOID ~440, sched ~540 (83%), async ~618 (95%).
  rep.add_expected("32", "CIOD", 390);
  rep.add_expected("32", "ZOID", 440);
  rep.add_expected("32", "ZOID+sched", 540);
  rep.add_expected("32", "ZOID+sched+async", 618);

  analysis::emit(rep);

  const double ciod = *rep.get("32", "CIOD");
  const double zoid = *rep.get("32", "ZOID");
  const double sched = *rep.get("32", "ZOID+sched");
  const double async = *rep.get("32", "ZOID+sched+async");
  std::printf("at 32 CNs: sched vs CIOD %+.0f%% (paper +38%%), sched vs ZOID %+.0f%% (paper +23%%)\n",
              100 * (sched / ciod - 1), 100 * (sched / zoid - 1));
  std::printf("           async vs CIOD %+.0f%% (paper +57%%), async vs ZOID %+.0f%% (paper +40%%)\n",
              100 * (async / ciod - 1), 100 * (async / zoid - 1));
  std::printf("           async efficiency %.0f%% of bound (paper ~95%%)\n",
              100 * async / cfg.end_to_end_bound_mib_s());
  return 0;
}
