// Extension experiment: resilience layer (src/fault/).
//
// A sequential write burst is driven through a backend whose writes fail
// with a configurable probability (seeded FaultPlan, transient io_error).
// Each fault rate runs twice: bare (every injected fault surfaces to the
// caller, its bytes lost) and wrapped in RetryingBackend (transient faults
// absorbed by capped exponential backoff). Compared: goodput, failed ops,
// and the retry ledger. The paper's forwarding pipeline only helps if it
// keeps forwarding when the far side misbehaves.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "fault/decorators.hpp"
#include "fault/retry.hpp"
#include "rt/backend.hpp"

namespace {

using namespace iofwd;

constexpr std::uint64_t kChunk = 64_KiB;
constexpr std::uint64_t kSeed = 0xbe51;

struct RunResult {
  double elapsed_ms = 0;
  double goodput_gib_s = 0;  // acknowledged bytes / wall time
  std::uint64_t ok_writes = 0;
  std::uint64_t failed_writes = 0;
};

RunResult run_burst(rt::IoBackend& backend, int writes, const std::vector<std::byte>& chunk) {
  RunResult r;
  (void)backend.open(1, "burst");
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < writes; ++i) {
    const std::uint64_t off = static_cast<std::uint64_t>(i) * kChunk;
    if (backend.write(1, off, chunk).is_ok()) {
      ++r.ok_writes;
    } else {
      ++r.failed_writes;
    }
  }
  (void)backend.fsync(1);
  (void)backend.close(1);
  r.elapsed_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                     .count();
  const double acked = static_cast<double>(r.ok_writes * kChunk);
  r.goodput_gib_s = acked / (1_GiB * r.elapsed_ms / 1e3);
  return r;
}

std::string pct(double rate) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g%%", rate * 100.0);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  // 2048 x 64 KiB = 128 MiB burst. Floor at 1024 even in --quick: shorter
  // runs are noise-dominated and make the recovery ratio meaningless.
  const int writes = std::max(1024, args.iters(2048));
  const std::uint64_t total = static_cast<std::uint64_t>(writes) * kChunk;

  std::vector<std::byte> chunk(kChunk);
  Rng rng(kSeed);
  for (auto& b : chunk) b = static_cast<std::byte>(rng.next());

  const double rates[] = {0.0, 0.001, 0.01, 0.05};

  analysis::FigureReport rep("ext_resilience",
                             "sequential burst (" + bench::mib(total) +
                                 ") vs injected transient write-fault rate",
                             "series", "see series");

  fault::RetryPolicy policy;
  policy.max_attempts = 6;
  policy.base_backoff = std::chrono::microseconds(50);
  policy.max_backoff = std::chrono::microseconds(5'000);

  double baseline_retry = 0;  // retry-on goodput at fault rate 0
  double retry_at_1pct = 0;
  std::uint64_t giveups_at_1pct = 0;

  // Best-of-3 per configuration: a single pass on a loaded machine is
  // noise-dominated and the recovery ratio below gates an exit code.
  constexpr int kReps = 3;

  for (const double rate : rates) {
    // Bare: injected faults surface; those chunks are simply lost.
    {
      RunResult best;
      for (int rep_i = 0; rep_i < kReps; ++rep_i) {
        auto plan = std::make_shared<fault::FaultPlan>(kSeed);
        if (rate > 0) {
          plan->add({.op = fault::OpKind::write, .probability = rate, .error = Errc::io_error});
        }
        fault::FaultyBackend be(std::make_unique<rt::MemBackend>(), plan);
        const auto r = run_burst(be, writes, chunk);
        if (r.goodput_gib_s > best.goodput_gib_s) best = r;
      }
      rep.add("retry off", "goodput GiB/s @" + pct(rate), best.goodput_gib_s);
      rep.add("retry off", "failed writes @" + pct(rate),
              static_cast<double>(best.failed_writes));
    }
    // Retried: the same seeded fault schedule, absorbed by the retry loop.
    {
      RunResult best;
      fault::RetryStats best_stats;
      for (int rep_i = 0; rep_i < kReps; ++rep_i) {
        auto plan = std::make_shared<fault::FaultPlan>(kSeed);
        if (rate > 0) {
          plan->add({.op = fault::OpKind::write, .probability = rate, .error = Errc::io_error});
        }
        fault::RetryingBackend be(
            std::make_unique<fault::FaultyBackend>(std::make_unique<rt::MemBackend>(), plan),
            policy);
        const auto r = run_burst(be, writes, chunk);
        if (r.goodput_gib_s > best.goodput_gib_s) {
          best = r;
          best_stats = be.stats();
        }
      }
      rep.add("retry on", "goodput GiB/s @" + pct(rate), best.goodput_gib_s);
      rep.add("retry on", "failed writes @" + pct(rate),
              static_cast<double>(best.failed_writes));

      if (rate == 0.0) baseline_retry = best.goodput_gib_s;
      if (rate == 0.01) {
        retry_at_1pct = best.goodput_gib_s;
        giveups_at_1pct = best_stats.giveups;
        analysis::ResilienceDiag d;
        d.retry_attempts = best_stats.attempts;
        d.retries = best_stats.retries;
        d.retry_giveups = best_stats.giveups;
        d.backoff_ns = best_stats.backoff_ns;
        std::printf("retry ledger at %s fault rate:\n", pct(rate).c_str());
        std::fputs(analysis::resilience_table(d).render().c_str(), stdout);
      }
    }
  }

  analysis::emit(rep);

  const double recovered = baseline_retry > 0 ? retry_at_1pct / baseline_retry : 0;
  std::printf(
      "at a 1%% transient write-fault rate the retry layer delivered %.1f%% of the\n"
      "fault-free goodput with %llu giveups; without it every faulted chunk is lost.\n",
      recovered * 100.0, static_cast<unsigned long long>(giveups_at_1pct));
  // Acceptance: retry-on recovers >= 90% of fault-free throughput at 1%.
  return (recovered >= 0.9 && giveups_at_1pct == 0) ? 0 : 1;
}
