// Extension experiment: end-to-end integrity overhead gate (DESIGN.md §12).
//
// Protocol v1 checksums every frame. Per 256 KiB write the ION server pays
// one payload CRC32C pass (verify) plus two header CRCs (decode request,
// encode reply); the compute-node client pays the mirror image (stamp +
// encode/decode). The gate budgets the *server-side* cost at <3% of the op,
// because ION CPU is what bounds forwarding capacity in the paper's
// architecture — the client stamp burns compute-node cycles, reported here
// but not gated. This bench measures both sides of the ratio and fails
// (exit 1) when the budget is blown, so CI gates regressions in the CRC
// kernels or in how often the wire path runs them:
//
//   1. kernel cost — ns per 256 KiB CRC32C on the dispatched (hardware,
//      when available) path and on the slicing-by-8 software fallback, so
//      the table shows what the negotiation is buying on this machine;
//   2. op cost — per-op wall time of 256 KiB writes through the real
//      IonServer + Client with v1 negotiated (checksums on), best of reps;
//   3. share — analytic per-op server integrity cost (1 payload + 2 header
//      CRCs at the measured kernel speed) over the measured op cost. Using
//      the dispatched kernel and the fastest op rep keeps the gate honest
//      and stable; the v1-vs-v0 wall-clock delta and the combined
//      client+server share are reported for reference but are too noisy /
//      out of scope to gate on.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/crc32c.hpp"
#include "core/units.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "rt/wire.hpp"

namespace {

using namespace iofwd;

constexpr double kBudgetPct = 3.0;
constexpr std::uint64_t kChunk = 256_KiB;

// Wire-path CRC mix per v1 write op, split by machine. Server (ION): verify
// the request payload (1 pass over kChunk), decode the request header and
// encode the reply header (2 passes over kCrcCoverage bytes). Client
// (compute node): stamp the payload, encode the request header, decode the
// reply header.
constexpr int kServerPayloadCrcsPerOp = 1;
constexpr int kServerHeaderCrcsPerOp = 2;
constexpr int kTotalPayloadCrcsPerOp = 2;
constexpr int kTotalHeaderCrcsPerOp = 4;

template <typename F>
double min_ns_per_iter(int reps, int iters, F&& body) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) body(i);
    const double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count();
    best = std::min(best, ns / iters);
  }
  return best;
}

double server_ns_per_write(std::uint16_t wire_version, int writes, int reps) {
  double best = 1e18;
  const std::vector<std::byte> chunk(kChunk, std::byte{0x42});
  for (int r = 0; r < reps; ++r) {
    rt::ServerConfig scfg;
    scfg.exec = rt::ExecModel::work_queue_async;
    scfg.max_wire_version = wire_version;
    rt::IonServer server(std::make_unique<rt::MemBackend>(), scfg);
    auto [a, b] = rt::InProcTransport::make_pair();
    server.serve(std::move(a));
    rt::ClientConfig ccfg;
    ccfg.max_wire_version = wire_version;
    rt::Client client(std::move(b), ccfg);
    (void)client.open(1, "bench");
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < writes; ++i) {
      (void)client.write(1, static_cast<std::uint64_t>(i) * kChunk, chunk);
    }
    (void)client.fsync(1);  // barrier: async acks land before the clock stops
    const double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count();
    (void)client.close(1);
    server.stop();
    best = std::min(best, ns / writes);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const int crc_iters = args.quick ? 400 : 4000;
  const int writes = args.iters(2000);
  const int reps = args.quick ? 2 : 3;

  std::vector<std::byte> buf(kChunk);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::byte>(i * 131);
  std::byte hdr[rt::FrameHeader::kWireSize] = {};
  volatile std::uint32_t sink = 0;

  // Dispatched path (hardware when the CPU has it, else software).
  const double hw_ns = min_ns_per_iter(reps, crc_iters, [&](int) {
    sink = sink + crc32c(buf.data(), buf.size());
  });
  // Software fallback, always measured so the table shows both dispatches.
  const double sw_ns = min_ns_per_iter(reps, crc_iters, [&](int) {
    sink = sink + crc32c_sw_extend(0, buf.data(), buf.size());
  });
  const double hdr_ns = min_ns_per_iter(reps, crc_iters * 100, [&](int) {
    sink = sink + crc32c(hdr, rt::FrameHeader::kCrcCoverage);
  });

  const double op_v1_ns = server_ns_per_write(rt::kProtoVersion, writes, reps);
  const double op_v0_ns = server_ns_per_write(0, writes, reps);

  const double server_integrity_ns =
      kServerPayloadCrcsPerOp * hw_ns + kServerHeaderCrcsPerOp * hdr_ns;
  const double total_integrity_ns =
      kTotalPayloadCrcsPerOp * hw_ns + kTotalHeaderCrcsPerOp * hdr_ns;
  const double share_pct = 100.0 * server_integrity_ns / op_v1_ns;
  const double total_share_pct = 100.0 * total_integrity_ns / op_v1_ns;
  const double delta_pct = 100.0 * (op_v1_ns - op_v0_ns) / op_v0_ns;

  analysis::DiagTable t("ext_integrity: CRC32C cost on the 256 KiB write path");
  t.add("crc32c dispatch", crc32c_hw_available() ? 1.0 : 0.0,
        std::string("1=hw 0=sw; selected: ") + crc32c_impl());
  t.add("crc32c 256 KiB (dispatched)", hw_ns,
        "ns/pass, " + std::to_string(static_cast<double>(kChunk) / hw_ns) + " GB/s");
  t.add("crc32c 256 KiB (sw fallback)", sw_ns,
        "ns/pass, " + std::to_string(static_cast<double>(kChunk) / sw_ns) + " GB/s");
  t.add("hw/sw speedup", sw_ns / hw_ns, "x (1.0 when no hw dispatch)");
  t.add("crc32c header (52 B)", hdr_ns, "ns/pass");
  t.add("server write op (v1, checksummed)", op_v1_ns, "ns/op, best of reps");
  t.add("server write op (v0, unchecked)", op_v0_ns, "ns/op, best of reps");
  t.add("v1 vs v0 wall delta", delta_pct, "%, informational (noisy)");
  t.add("server integrity / op", server_integrity_ns,
        "ns: 1 payload + 2 header CRCs at dispatched speed");
  t.add("server overhead share", share_pct, "% of v1 op, budget < 3% (gated)");
  t.add("client+server share", total_share_pct,
        "%, informational: adds the compute-node stamp");
  std::fputs(t.render().c_str(), stdout);

  if (share_pct >= kBudgetPct) {
    std::fprintf(stderr, "FAIL: server integrity overhead %.3f%% >= %.1f%% budget\n", share_pct,
                 kBudgetPct);
    return 1;
  }
  std::printf("PASS: server integrity overhead %.3f%% < %.1f%% budget (%s dispatch)\n", share_pct,
              kBudgetPct, crc32c_impl());
  return 0;
}
