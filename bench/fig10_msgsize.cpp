// Figure 10: end-to-end throughput for 64 CNs as the message size varies.
//
// Paper: the two-step control exchange gates small messages; at 256 KiB the
// efficiencies are CIOD 64%, ZOID 74%, +scheduling 86%, +async staging 95%;
// gains persist across sizes.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto cfg = bgp::MachineConfig::intrepid();
  proto::ForwarderConfig fc;
  fc.workers = 4;
  const double bound = cfg.end_to_end_bound_mib_s();

  analysis::FigureReport rep("fig10", "End-to-end throughput vs message size (64 CNs)",
                             "msg");
  const std::uint64_t sizes[] = {16_KiB, 64_KiB, 256_KiB, 512_KiB, 1_MiB, 2_MiB, 4_MiB};
  for (auto sz : sizes) {
    wl::StreamParams p;
    p.cns_per_pset = 64;
    p.message_bytes = sz;
    // Constant volume per point: fewer iterations for big messages.
    p.iterations = std::max(10, static_cast<int>(
        static_cast<std::uint64_t>(args.iters(256)) * 1_MiB / sz / 4));
    for (auto m : bench::kMechanisms) {
      rep.add(bench::mib(sz), proto::to_string(m), wl::max_of_runs(m, cfg, fc, p, args.runs));
    }
  }
  // Paper anchors at 256 KiB (efficiency x 650 bound).
  rep.add_expected("256KiB", "CIOD", 0.64 * 650);
  rep.add_expected("256KiB", "ZOID", 0.74 * 650);
  rep.add_expected("256KiB", "ZOID+sched", 0.86 * 650);
  rep.add_expected("256KiB", "ZOID+sched+async", 0.95 * 650);

  analysis::emit(rep);

  std::printf("efficiencies at 256 KiB vs bound (%.0f MiB/s):\n", bound);
  for (auto m : bench::kMechanisms) {
    const auto v = rep.get("256KiB", proto::to_string(m));
    std::printf("  %-18s %.0f%%\n", proto::to_string(m).c_str(), 100 * *v / bound);
  }
  return 0;
}
