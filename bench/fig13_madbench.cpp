// Figure 13: the MADbench2 application benchmark against GPFS storage.
//
// Configuration per the paper (Sec. V-B): I/O mode (alpha = 1, no busy
// work), RMOD = WMOD = 1 (every process does I/O), 1024 component matrices;
// 64 nodes with NPIX 4096 (128 GiB total I/O, ~2 MiB per op) and 256 nodes
// with NPIX 8192 (512 GiB).
//
// Paper: async staging + scheduling beats CIOD by 53% (64 nodes) / 49%
// (256 nodes) and ZOID by 40% / 34%.
#include "bench_common.hpp"
#include "wl/madbench.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);

  analysis::FigureReport rep("fig13", "MADbench2 to GPFS (alpha=1, RMOD=WMOD=1)", "nodes");
  proto::ForwarderConfig fc;
  fc.workers = 4;

  struct Case {
    int nodes;
    std::uint64_t npix;
  };
  for (const auto& c : {Case{64, 4096}, Case{256, 8192}}) {
    wl::MadbenchParams p;
    p.nodes = c.nodes;
    p.npix = c.npix;
    p.n_matrices = args.quick ? 128 : 1024;
    for (auto m : {proto::Mechanism::ciod, proto::Mechanism::zoid,
                   proto::Mechanism::zoid_sched_async}) {
      const auto r = run_madbench(m, bgp::MachineConfig::intrepid(), fc, p);
      rep.add(std::to_string(c.nodes), proto::to_string(m), r.throughput_mib_s);
      if (m == proto::Mechanism::zoid_sched_async) {
        std::printf("[%d nodes, %s] %.1f GiB in %.1f s (%llu writes, %llu reads)\n", c.nodes,
                    proto::to_string(m).c_str(), static_cast<double>(r.bytes) / (1_GiB),
                    r.elapsed_s, static_cast<unsigned long long>(r.writes),
                    static_cast<unsigned long long>(r.reads));
      }
    }
  }

  analysis::emit(rep);

  for (int nodes : {64, 256}) {
    const auto x = std::to_string(nodes);
    const double ciod = *rep.get(x, "CIOD");
    const double zoid = *rep.get(x, "ZOID");
    const double async = *rep.get(x, "ZOID+sched+async");
    std::printf("%3d nodes: async vs CIOD %+.0f%% (paper +%d%%), vs ZOID %+.0f%% (paper +%d%%)\n",
                nodes, 100 * (async / ciod - 1), nodes == 64 ? 53 : 49,
                100 * (async / zoid - 1), nodes == 64 ? 40 : 34);
  }
  return 0;
}
