// Shared helpers for the per-figure bench binaries.
//
// Every binary accepts:
//   --quick        reduce iteration counts ~10x (CI smoke)
//   key=value      MachineConfig-independent overrides (iters=..., runs=...)
// and prints a FigureReport (paper series next to measured) plus a CSV under
// results/.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "analysis/report.hpp"
#include "bgp/config.hpp"
#include "core/flags.hpp"
#include "proto/forwarder.hpp"
#include "wl/stream.hpp"

namespace iofwd::bench {

struct BenchArgs {
  bool quick = false;
  int iterations = 1000;  // the paper's per-run iteration count
  int runs = 1;           // deterministic sim: one run is representative

  static BenchArgs parse(int argc, char** argv) {
    flags::Parser p(argc, argv);
    BenchArgs a;
    a.quick = p.get_flag("quick");
    a.iterations = p.get_int("iters", a.iterations);
    a.runs = p.get_int("runs", a.runs);
    // Fail loudly on anything unrecognized — a typoed knob silently running
    // the default configuration poisons a whole result series.
    bool ok = p.check_strict(argv != nullptr && argv[0] != nullptr ? argv[0] : "bench");
    for (const auto& s : p.positionals()) {
      std::fprintf(stderr, "%s: error: unexpected positional argument '%s'\n",
                   argv != nullptr && argv[0] != nullptr ? argv[0] : "bench", s.c_str());
      ok = false;
    }
    if (!ok) std::exit(2);
    if (a.quick) a.iterations = std::max(20, a.iterations / 10);
    return a;
  }

  [[nodiscard]] int iters(int dflt) const {
    return iterations != 1000 ? iterations : (quick ? std::max(20, dflt / 10) : dflt);
  }
};

inline const proto::Mechanism kMechanisms[] = {
    proto::Mechanism::ciod, proto::Mechanism::zoid, proto::Mechanism::zoid_sched,
    proto::Mechanism::zoid_sched_async};

inline std::string mib(std::uint64_t bytes) {
  if (bytes >= MiB) return std::to_string(bytes / MiB) + "MiB";
  return std::to_string(bytes / KiB) + "KiB";
}

}  // namespace iofwd::bench
