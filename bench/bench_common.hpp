// Shared helpers for the per-figure bench binaries.
//
// Every binary accepts:
//   --quick        reduce iteration counts ~10x (CI smoke)
//   key=value      MachineConfig-independent overrides (iters=..., runs=...)
// and prints a FigureReport (paper series next to measured) plus a CSV under
// results/.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "analysis/report.hpp"
#include "bgp/config.hpp"
#include "proto/forwarder.hpp"
#include "wl/stream.hpp"

namespace iofwd::bench {

struct BenchArgs {
  bool quick = false;
  int iterations = 1000;  // the paper's per-run iteration count
  int runs = 1;           // deterministic sim: one run is representative

  static BenchArgs parse(int argc, char** argv) {
    BenchArgs a;
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--quick") == 0) {
        a.quick = true;
      } else if (std::strncmp(argv[i], "iters=", 6) == 0) {
        a.iterations = std::atoi(argv[i] + 6);
      } else if (std::strncmp(argv[i], "runs=", 5) == 0) {
        a.runs = std::atoi(argv[i] + 5);
      } else {
        std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      }
    }
    if (a.quick) a.iterations = std::max(20, a.iterations / 10);
    return a;
  }

  [[nodiscard]] int iters(int dflt) const {
    return iterations != 1000 ? iterations : (quick ? std::max(20, dflt / 10) : dflt);
  }
};

inline const proto::Mechanism kMechanisms[] = {
    proto::Mechanism::ciod, proto::Mechanism::zoid, proto::Mechanism::zoid_sched,
    proto::Mechanism::zoid_sched_async};

inline std::string mib(std::uint64_t bytes) {
  if (bytes >= MiB) return std::to_string(bytes / MiB) + "MiB";
  return std::to_string(bytes / KiB) + "KiB";
}

}  // namespace iofwd::bench
