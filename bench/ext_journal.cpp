// Extension experiment: write-ahead journal overhead (src/bb/, DESIGN.md §16).
//
// The durability tentpole says "acked => journaled": every staged write is
// framed, CRC'd, and appended to the journal before the ack leaves the ION.
// That safety has to be close to free, or nobody turns it on. This bench
// drives an identical 256 KiB-write burst through a burst buffer with the
// journal off and on (fsync off: the crash model is a dying ION process, and
// the page cache outlives that) and gates journaled ingest goodput at >= 90%
// of the unjournaled baseline.
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <stdlib.h>  // mkdtemp

#include "analysis/report.hpp"
#include "bb/burst_buffer.hpp"
#include "bb/journal.hpp"
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "rt/backend.hpp"

namespace {

using namespace iofwd;

constexpr std::uint64_t kWrite = 256_KiB;
constexpr double kGate = 0.90;

struct RunResult {
  double ingest_ms = 0;
  double goodput_mib_s = 0;
  std::uint64_t journal_appends = 0;
  std::uint64_t journal_bytes = 0;
};

// Drive `chunks` strided 256 KiB writes (8 interleaved regions, checkpoint
// shape) through a fresh burst buffer; every write must be acked from cache,
// so the measured cost is staging + (optionally) the journal append.
RunResult run_burst(const std::string& journal_dir, int chunks,
                    const std::vector<std::byte>& chunk) {
  constexpr int kRegions = 8;
  bb::BurstBufferConfig bcfg;
  // Capacity holds the whole burst and keeps 256 KiB below the
  // write-through threshold (capacity/4), so no write bypasses staging.
  bcfg.capacity_bytes = 2ull * static_cast<std::uint64_t>(chunks) * kWrite;
  bcfg.high_watermark = 1.0;  // quiet flusher: measure the ack path alone
  bcfg.low_watermark = 1.0;
  bcfg.journal_dir = journal_dir;
  bb::BurstBufferBackend bbuf(std::make_unique<rt::MemBackend>(), bcfg);

  RunResult r;
  (void)bbuf.open(1, "ckpt");
  const int per_region = chunks / kRegions;
  const std::uint64_t region = static_cast<std::uint64_t>(per_region) * kWrite;
  const auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < per_region; ++c) {
    for (int reg = 0; reg < kRegions; ++reg) {
      const std::uint64_t off =
          static_cast<std::uint64_t>(reg) * region + static_cast<std::uint64_t>(c) * kWrite;
      auto w = bbuf.write(1, off, chunk);
      if (!w.is_ok()) {
        std::fprintf(stderr, "stage write failed: %s\n", w.status().to_string().c_str());
        std::exit(2);
      }
    }
  }
  r.ingest_ms = std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
                    .count();
  const std::uint64_t total = static_cast<std::uint64_t>(per_region) * kRegions * kWrite;
  r.goodput_mib_s = static_cast<double>(total) / (1_MiB * r.ingest_ms / 1e3);

  const auto snap = bbuf.registry().snapshot();
  if (auto it = snap.counters.find("bb.journal.appends"); it != snap.counters.end()) {
    r.journal_appends = it->second;
  }
  if (bbuf.journal() != nullptr) r.journal_bytes = bbuf.journal()->size_bytes();
  (void)bbuf.fsync(1);
  (void)bbuf.close(1);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const int chunks = args.iters(512);  // 512 x 256 KiB = 128 MiB per mode

  std::vector<std::byte> chunk(kWrite);
  Rng rng(42);
  for (auto& b : chunk) b = static_cast<std::byte>(rng.next());

  char tmpl[] = "/tmp/iofwd-bench-journal-XXXXXX";
  char* dir = mkdtemp(tmpl);
  if (dir == nullptr) {
    std::fputs("mkdtemp failed; cannot place the journal\n", stderr);
    return 2;
  }

  analysis::FigureReport rep(
      "ext_journal",
      "WAL overhead on the staged ack path (" +
          bench::mib(static_cast<std::uint64_t>(chunks) * kWrite) + " of 256KiB writes)",
      "journal", "see series");

  // Interleave alternating off/on runs and keep the best of each so one cold
  // page-cache or allocator hiccup cannot decide the gate.
  RunResult off, on;
  constexpr int kRounds = 3;
  for (int round = 0; round < kRounds; ++round) {
    const RunResult o = run_burst("", chunks, chunk);
    if (round == 0 || o.goodput_mib_s > off.goodput_mib_s) off = o;
    const RunResult j = run_burst(dir, chunks, chunk);
    if (round == 0 || j.goodput_mib_s > on.goodput_mib_s) on = j;
    std::filesystem::remove_all(dir);  // fresh journal per round
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);

  rep.add("journal off", "ingest ms", off.ingest_ms);
  rep.add("journal off", "goodput MiB/s", off.goodput_mib_s);
  rep.add("journal on", "ingest ms", on.ingest_ms);
  rep.add("journal on", "goodput MiB/s", on.goodput_mib_s);
  rep.add("journal on", "appends", static_cast<double>(on.journal_appends));
  const double ratio = off.goodput_mib_s > 0 ? on.goodput_mib_s / off.goodput_mib_s : 0;
  rep.add("journal on", "goodput ratio", ratio);
  analysis::emit(rep);

  std::printf(
      "journaling every staged 256KiB write (%llu appends, %llu journal bytes)\n"
      "kept %.1f%% of the unjournaled goodput (%.0f vs %.0f MiB/s); gate: >= %.0f%%.\n",
      static_cast<unsigned long long>(on.journal_appends),
      static_cast<unsigned long long>(on.journal_bytes), ratio * 100.0, on.goodput_mib_s,
      off.goodput_mib_s, kGate * 100.0);
  return ratio >= kGate ? 0 : 1;
}
