// Extension experiment: per-tenant fair-share isolation (DESIGN.md §17).
//
// The ROADMAP's nightmare tenant: one hot client pipelines a deep window of
// large writes through the ION while 63 quiet tenants each trickle small
// synchronous writes. The server runs a single-worker synchronous work queue
// over a fixed-service-rate device, so the task queue IS the contended
// resource and the scheduling policy decides who eats the device.
//
//   * baseline — the 63 quiet tenants alone (no hot tenant), FIFO;
//   * fifo+hot — the flood shares FIFO order: every quiet op queues behind
//     the hot tenant's whole outstanding window, and quiet goodput craters;
//   * fair+hot — deficit round-robin caps the hot tenant at one quantum per
//     round, so the quiet tenants keep their aggregate goodput.
//
// Gate (exit 1): quiet aggregate goodput under fair with the hot tenant
// present must stay >= 90% of the no-hot-tenant baseline, best-of-reps on
// both sides. The fifo+hot point is reported for contrast but not gated —
// it is the regression the fair policy exists to prevent.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/units.hpp"
#include "rt/async_client.hpp"
#include "rt/client.hpp"
#include "rt/scheduler.hpp"
#include "rt/server.hpp"
#include "rt/transport.hpp"

namespace {

using namespace iofwd;

constexpr int kQuietTenants = 63;
constexpr std::size_t kPipeBytes = 256_KiB;
constexpr std::size_t kQuietWrite = 16_KiB;
constexpr std::size_t kHotWrite = 64_KiB;
constexpr int kHotWindow = 128;
constexpr auto kDeviceLatency = std::chrono::microseconds(30);

// A fixed-service-rate device: every write costs kDeviceLatency before the
// MemBackend absorbs it. With one synchronous worker in front, the queue in
// front of this device is the bottleneck the policies arbitrate.
class SlowBackend final : public rt::IoBackend {
 public:
  Status open(int fd, const std::string& path) override { return mem_.open(fd, path); }
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override {
    std::this_thread::sleep_for(kDeviceLatency);
    return mem_.write(fd, offset, data);
  }
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override {
    return mem_.read(fd, offset, out);
  }
  Status fsync(int fd) override { return mem_.fsync(fd); }
  Status close(int fd) override { return mem_.close(fd); }
  Result<std::uint64_t> size(int fd) override { return mem_.size(fd); }

 private:
  rt::MemBackend mem_;
};

// Aggregate quiet-tenant MiB/s: 63 quiet tenants x `writes` x 16 KiB
// synchronous writes each, optionally against a hot tenant pipelining a
// 128-deep window of 64 KiB writes for the whole measurement.
double quiet_mibs(rt::SchedPolicy policy, bool with_hot, int writes, int reps) {
  double best = 0.0;
  const std::vector<std::byte> quiet_chunk(kQuietWrite, std::byte{0x51});
  const std::vector<std::byte> hot_chunk(kHotWrite, std::byte{0xb0});
  for (int r = 0; r < reps; ++r) {
    rt::ServerConfig cfg;
    cfg.exec = rt::ExecModel::work_queue;  // replies on completion: queue order is visible
    cfg.workers = 1;
    cfg.sched = policy;
    // One quiet op of credit per round: the hot tenant's 64 KiB ops must
    // save up 4 rounds of deficit per dispatch, matching its 4x byte cost.
    cfg.sched_quantum_bytes = kQuietWrite;
    cfg.bml_bytes = 64_MiB;
    rt::IonServer server(std::make_unique<SlowBackend>(), cfg);

    // Quiet tenants: one synchronous client each, tenants 1..63.
    std::vector<std::unique_ptr<rt::Client>> quiet;
    quiet.reserve(kQuietTenants);
    for (int c = 0; c < kQuietTenants; ++c) {
      auto [srv, cl] = rt::InProcTransport::make_pair(kPipeBytes);
      server.serve(std::move(srv));
      rt::ClientConfig ccfg;
      ccfg.tenant = static_cast<std::uint64_t>(c) + 1;
      quiet.push_back(std::make_unique<rt::Client>(std::move(cl), ccfg));
      if (!quiet.back()->open(1 + c, "quiet" + std::to_string(c)).is_ok()) {
        std::fprintf(stderr, "quiet open failed for tenant %d\n", c + 1);
        return 0.0;
      }
    }

    // Hot tenant: a pipelined AsyncClient (tenant 0) flooding large writes.
    std::unique_ptr<rt::AsyncClient> hot;
    std::atomic<bool> stop_hot{false};
    std::thread hot_thread;
    if (with_hot) {
      auto [srv, cl] = rt::InProcTransport::make_pair(kPipeBytes);
      server.serve(std::move(srv));
      hot = std::make_unique<rt::AsyncClient>(std::move(cl), kHotWindow);
      if (hot->open(1000, "hot").get().code() != Errc::ok) {
        std::fprintf(stderr, "hot open failed\n");
        return 0.0;
      }
      hot_thread = std::thread([&] {
        std::uint64_t off = 0;
        std::vector<std::future<Status>> inflight;
        while (!stop_hot.load(std::memory_order_acquire)) {
          inflight.push_back(hot->write(1000, off, hot_chunk));
          off += kHotWrite;
          // Trim settled futures so the vector stays bounded.
          if (inflight.size() >= 2 * kHotWindow) {
            for (auto& f : inflight) (void)f.get();
            inflight.clear();
          }
        }
        for (auto& f : inflight) (void)f.get();
      });
    }

    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    threads.reserve(kQuietTenants);
    for (int c = 0; c < kQuietTenants; ++c) {
      threads.emplace_back([&, c] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        rt::Client& cl = *quiet[static_cast<std::size_t>(c)];
        for (int i = 0; i < writes; ++i) {
          (void)cl.write(1 + c, static_cast<std::uint64_t>(i) * kQuietWrite, quiet_chunk);
        }
      });
    }
    const auto t0 = std::chrono::steady_clock::now();
    go.store(true, std::memory_order_release);
    for (auto& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    if (with_hot) {
      stop_hot.store(true, std::memory_order_release);
      hot_thread.join();
      hot->shutdown();
    }
    server.stop();
    const double quiet_mib = static_cast<double>(kQuietTenants) * writes *
                             static_cast<double>(kQuietWrite) / (1 << 20);
    best = std::max(best, quiet_mib / secs);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const int reps = args.quick ? 2 : 3;
  const int writes = args.quick ? 24 : 48;

  analysis::DiagTable t("ext_qos: quiet-tenant aggregate goodput vs one hot tenant (63+1)");
  const double baseline = quiet_mibs(rt::SchedPolicy::fifo, false, writes, reps);
  const double fifo_hot = quiet_mibs(rt::SchedPolicy::fifo, true, writes, reps);
  const double fair_hot = quiet_mibs(rt::SchedPolicy::fair, true, writes, reps);

  t.add("baseline (no hot)", baseline,
        "MiB/s quiet aggregate, 63 tenants x " + std::to_string(writes) + " x " +
            bench::mib(kQuietWrite) + " writes, best of " + std::to_string(reps));
  t.add("fifo + hot", fifo_hot,
        "hot tenant pipelines " + std::to_string(kHotWindow) + " x " + bench::mib(kHotWrite) +
            " writes; quiet ops queue behind the whole window");
  t.add("fair + hot", fair_hot, "deficit round-robin caps the hot tenant at one quantum/round");
  const double fair_ratio = baseline > 0 ? fair_hot / baseline : 0.0;
  const double fifo_ratio = baseline > 0 ? fifo_hot / baseline : 0.0;
  t.add("fair/baseline", fair_ratio, "gate: >= 0.90 (quiet tenants keep their share)");
  t.add("fifo/baseline", fifo_ratio, "reported for contrast (the regression fair prevents)");
  std::fputs(t.render().c_str(), stdout);

  if (fair_ratio < 0.90) {
    std::fprintf(stderr,
                 "FAIL: quiet goodput under fair is only %.0f%% of the no-hot baseline\n",
                 100.0 * fair_ratio);
    return 1;
  }
  std::printf("PASS: quiet tenants keep %.0f%% of baseline goodput under fair-share\n",
              100.0 * fair_ratio);
  return 0;
}
