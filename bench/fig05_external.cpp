// Figure 5: nuttcp-like memory-to-memory streaming from an I/O node to a
// data-analysis node over the external 10 GbE network, varying the number
// of sender threads; plus the DA-to-DA single-thread reference.
//
// Paper numbers: 1 thread 307 MiB/s (CPU-bound on the 850 MHz ION core),
// 4 threads 791 MiB/s (best), 8 threads lower (contention on 4 cores);
// DA->DA sustains 1110 MiB/s with one thread.
#include <vector>

#include "bench_common.hpp"
#include "bgp/machine.hpp"
#include "sim/sync.hpp"

namespace {

using namespace iofwd;

// One nuttcp stream: protocol CPU is serialized on the sender thread while
// the NIC drains previously prepared data concurrently (TCP keeps the wire
// busy as long as the socket buffer is fed).
sim::Proc<void> wire_leg(bgp::Machine& m, sim::Link& src_nic, std::uint64_t msg,
                         std::uint64_t& delivered, sim::SimTime& last) {
  auto& da = m.da(0);
  co_await sim::when_all(m.engine(), src_nic.transfer(msg), da.nic().transfer(msg));
  delivered += msg;
  last = m.engine().now();
}

sim::Proc<void> sender(bgp::Machine& m, sim::CpuPool& cpu, sim::Link& src_nic, double cost_ns_b,
                       std::uint64_t msg, int iters, std::uint64_t& delivered,
                       sim::SimTime& last) {
  sim::WaitGroup wires(m.engine());
  for (int i = 0; i < iters; ++i) {
    co_await cpu.consume(static_cast<double>(msg) * cost_ns_b);
    wires.add(1);
    m.engine().spawn(
        sim::detail::run_into_group(wire_leg(m, src_nic, msg, delivered, last), wires));
  }
  co_await wires.wait();
}

double run_case(bool from_ion, int threads, int iters) {
  sim::Engine eng;
  auto cfg = bgp::MachineConfig::intrepid();
  cfg.num_da_nodes = 2;
  bgp::Machine m(eng, cfg);

  // Sender side: the ION's slow cores, or a second DA node's fast ones.
  sim::CpuPool& cpu = from_ion ? m.pset(0).ion().cpu() : m.da(1).cpu();
  sim::Link& nic = from_ion ? m.pset(0).ion().nic() : m.da(1).nic();
  const double cost = from_ion ? cfg.ion_tcp_send_cost_ns_b : cfg.da_tcp_cost_ns_b;

  std::uint64_t delivered = 0;
  sim::SimTime last = 0;
  for (int t = 0; t < threads; ++t) {
    eng.spawn(sender(m, cpu, nic, cost, 1_MiB, iters, delivered, last));
  }
  eng.run();
  return static_cast<double>(delivered) / (1024.0 * 1024.0) / sim::to_seconds(last);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const int iters = args.iters(500);

  analysis::FigureReport rep("fig05", "ION -> DA streaming over 10 GbE (nuttcp-like)",
                             "threads");
  for (int t : {1, 2, 4, 8}) {
    rep.add(std::to_string(t), "ION->DA", run_case(/*from_ion=*/true, t, iters));
  }
  rep.add("1", "DA->DA", run_case(/*from_ion=*/false, 1, iters));

  rep.add_expected("1", "ION->DA", 307);
  rep.add_expected("4", "ION->DA", 791);
  rep.add_expected("1", "DA->DA", 1110);

  analysis::emit(rep);
  return 0;
}
