// google-benchmark micro-suite for the real runtime's hot paths:
// frame codec, buffer pool, task queue, transports, and full client/server
// write round trips per execution model.
#include <benchmark/benchmark.h>

#include <thread>

#include "core/units.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"
#include "rt/task_queue.hpp"

namespace {

using namespace iofwd;

void BM_FrameEncodeDecode(benchmark::State& state) {
  rt::FrameHeader h;
  h.op = rt::OpCode::write;
  h.fd = 7;
  h.payload_len = 1_MiB;
  std::byte buf[rt::FrameHeader::kWireSize];
  for (auto _ : state) {
    h.encode(std::span<std::byte, rt::FrameHeader::kWireSize>(buf));
    auto r = rt::FrameHeader::decode(
        std::span<const std::byte, rt::FrameHeader::kWireSize>(buf));
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_FrameEncodeDecode);

void BM_BufferPoolAcquireRelease(benchmark::State& state) {
  rt::BufferPool pool(1_GiB);
  const auto size = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    auto b = pool.acquire(size);
    benchmark::DoNotOptimize(b.value().data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_BufferPoolAcquireRelease)->Arg(4096)->Arg(65536)->Arg(1 << 20);

void BM_TaskQueuePushPop(benchmark::State& state) {
  rt::TaskQueue<int> q(4);
  for (auto _ : state) {
    q.push(1);
    auto b = q.pop_batch(8);
    benchmark::DoNotOptimize(b);
  }
}
BENCHMARK(BM_TaskQueuePushPop);

void BM_TaskQueueBatched(benchmark::State& state) {
  rt::TaskQueue<int> q(4);
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) q.push(i);
    while (q.size() > 0) benchmark::DoNotOptimize(q.pop_batch(batch, false));
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TaskQueueBatched)->Arg(8)->Arg(64);

void BM_InProcTransfer(benchmark::State& state) {
  auto [a, b] = rt::InProcTransport::make_pair(1 << 20);
  const auto n = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> src(n), dst(n);
  std::jthread echo([&b = *b, n](const std::stop_token& st) {
    std::vector<std::byte> buf(n);
    while (!st.stop_requested()) {
      if (!b.read_exact(buf.data(), n).is_ok()) return;
      if (!b.write_all(buf.data(), n).is_ok()) return;
    }
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(a->write_all(src.data(), n));
    benchmark::DoNotOptimize(a->read_exact(dst.data(), n));
  }
  a->close();
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(2 * n));
}
BENCHMARK(BM_InProcTransfer)->Arg(4096)->Arg(1 << 20);

void run_write_roundtrip(benchmark::State& state, rt::ExecModel exec) {
  rt::ServerConfig cfg;
  cfg.exec = exec;
  rt::IonServer server(std::make_unique<rt::MemBackend>(), cfg);
  auto [se, ce] = rt::InProcTransport::make_pair(4 << 20);
  server.serve(std::move(se));
  rt::Client client(std::move(ce));
  (void)client.open(1, "bench");
  const auto n = static_cast<std::uint64_t>(state.range(0));
  std::vector<std::byte> data(n);
  std::uint64_t off = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.write(1, off, data));
    off = (off + n) % (64_MiB);
  }
  (void)client.fsync(1);
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}

void BM_WriteRoundtrip_ThreadPerClient(benchmark::State& state) {
  run_write_roundtrip(state, rt::ExecModel::thread_per_client);
}
void BM_WriteRoundtrip_WorkQueue(benchmark::State& state) {
  run_write_roundtrip(state, rt::ExecModel::work_queue);
}
void BM_WriteRoundtrip_AsyncStaging(benchmark::State& state) {
  run_write_roundtrip(state, rt::ExecModel::work_queue_async);
}
BENCHMARK(BM_WriteRoundtrip_ThreadPerClient)->Arg(4096)->Arg(1 << 20);
BENCHMARK(BM_WriteRoundtrip_WorkQueue)->Arg(4096)->Arg(1 << 20);
BENCHMARK(BM_WriteRoundtrip_AsyncStaging)->Arg(4096)->Arg(1 << 20);

}  // namespace

BENCHMARK_MAIN();
