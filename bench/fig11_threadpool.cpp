// Figure 11: impact of the worker-pool size on I/O forwarding with both
// scheduling and asynchronous staging (1 MiB messages).
//
// Paper: 1 thread cannot exceed ~300 MiB/s (one 850 MHz core's TCP limit),
// 2 and 4 threads improve, 8 threads regress versus 4 (contention on the
// 4 cores) — 4 workers is the sweet spot.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto cfg = bgp::MachineConfig::intrepid();

  analysis::FigureReport rep("fig11", "Worker-pool size vs throughput (sched+async, 1 MiB)",
                             "workers");
  wl::StreamParams p;
  p.cns_per_pset = 64;
  p.iterations = args.iters(1000);

  for (int w : {1, 2, 4, 8, 16}) {
    proto::ForwarderConfig fc;
    fc.workers = w;
    rep.add(std::to_string(w), "ZOID+sched+async",
            wl::max_of_runs(proto::Mechanism::zoid_sched_async, cfg, fc, p, args.runs));
  }
  rep.add_expected("1", "ZOID+sched+async", 300);
  rep.add_expected("4", "ZOID+sched+async", 618);

  analysis::emit(rep);

  const double w4 = *rep.get("4", "ZOID+sched+async");
  const double w8 = *rep.get("8", "ZOID+sched+async");
  std::printf("8 workers vs 4: %+.1f%% (paper: negative — 4 is the sweet spot)\n",
              100 * (w8 / w4 - 1));
  return 0;
}
