// Ablation: work-queue scheduling policies (paper Sec. IV suggests taking
// "data sizes into account" and "separate queues based on the priority of
// data" — here both are implemented and measured).
//
// Workload (synchronous staging, so queue wait is application-visible):
// 56 CNs stream bulk 1 MiB checkpoints while 8 CNs issue sporadic
// 64 KiB high-priority messages. FIFO makes the small messages wait behind
// bulk chunks; SJF and priority scheduling cut their latency, ideally
// without hurting bulk throughput.
#include "bench_common.hpp"
#include "wl/priority.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto cfg = bgp::MachineConfig::intrepid();

  wl::PriorityParams p;
  p.bulk_iterations = args.iters(200);
  p.interactive_iterations = args.iters(200);

  analysis::FigureReport rep("abl_sched_policy",
                             "Ablation: queue policy under mixed bulk+interactive load",
                             "policy", "see series");
  for (auto pol : {proto::QueuePolicy::fifo, proto::QueuePolicy::sjf,
                   proto::QueuePolicy::priority}) {
    proto::ForwarderConfig fc;
    fc.policy = pol;
    // Two workers instead of four: the pool (not the tree) becomes the
    // bottleneck, so the queue carries a standing backlog — the regime
    // where ordering policy matters.
    fc.workers = 2;
    const auto r = wl::run_priority(proto::Mechanism::zoid_sched, cfg, fc, p);
    const auto x = proto::to_string(pol);
    rep.add(x, "bulk MiB/s", r.bulk_throughput_mib_s);
    rep.add(x, "interactive p50 us", r.interactive_mean_latency_us);
    rep.add(x, "interactive p99 us", r.interactive_p99_latency_us);
    rep.add(x, "bulk p50 ms", r.bulk_mean_latency_ms);
  }
  analysis::emit(rep);

  const double fifo_p99 = *rep.get("fifo", "interactive p99 us");
  const double prio_p99 = *rep.get("priority", "interactive p99 us");
  std::printf("priority scheduling cuts interactive p99 latency by %.0f%%\n",
              100.0 * (1.0 - prio_p99 / fifo_p99));
  return 0;
}
