// Extension experiment: burst-buffer staging cache (src/bb/).
//
// An N-to-1 checkpoint: every rank owns a contiguous region of one shared
// file, but chunks arrive round-robin across ranks, so consecutive writes at
// the ION jump between regions. The sequential-only AggregatingBackend
// flushes on nearly every write; the extent-indexed burst buffer coalesces
// each region into one run and drains it on fsync. Compared per backend:
// ingest latency, drain latency, and backend write-op count.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/report.hpp"
#include "bb/burst_buffer.hpp"
#include "bench_common.hpp"
#include "core/rng.hpp"
#include "core/units.hpp"
#include "rt/aggregator.hpp"
#include "rt/backend.hpp"

namespace {

using namespace iofwd;

// Counts the operations that reach the terminal backend.
class CountingBackend final : public rt::IoBackend {
 public:
  explicit CountingBackend(std::unique_ptr<rt::IoBackend> inner) : inner_(std::move(inner)) {}

  Status open(int fd, const std::string& path) override { return inner_->open(fd, path); }
  Result<std::uint64_t> write(int fd, std::uint64_t offset,
                              std::span<const std::byte> data) override {
    ++writes_;
    return inner_->write(fd, offset, data);
  }
  Result<std::uint64_t> read(int fd, std::uint64_t offset, std::span<std::byte> out) override {
    return inner_->read(fd, offset, out);
  }
  Status fsync(int fd) override { return inner_->fsync(fd); }
  Status close(int fd) override { return inner_->close(fd); }
  Result<std::uint64_t> size(int fd) override { return inner_->size(fd); }

  [[nodiscard]] std::uint64_t writes() const { return writes_; }

 private:
  std::unique_ptr<rt::IoBackend> inner_;
  std::uint64_t writes_ = 0;
};

struct RunResult {
  double ingest_ms = 0;
  double drain_ms = 0;
  std::uint64_t backend_writes = 0;
};

constexpr int kRanks = 8;
constexpr std::uint64_t kChunk = 64_KiB;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Drive the round-robin checkpoint burst through `backend`; `counter` is the
// terminal CountingBackend underneath it.
RunResult run_burst(rt::IoBackend& backend, const CountingBackend& counter,
                    int chunks_per_rank, const std::vector<std::byte>& chunk) {
  RunResult r;
  (void)backend.open(1, "ckpt");
  const std::uint64_t region = static_cast<std::uint64_t>(chunks_per_rank) * kChunk;
  auto t0 = std::chrono::steady_clock::now();
  for (int c = 0; c < chunks_per_rank; ++c) {
    for (int rank = 0; rank < kRanks; ++rank) {
      const std::uint64_t off =
          static_cast<std::uint64_t>(rank) * region + static_cast<std::uint64_t>(c) * kChunk;
      (void)backend.write(1, off, chunk);
    }
  }
  r.ingest_ms = ms_since(t0);
  t0 = std::chrono::steady_clock::now();
  (void)backend.fsync(1);
  (void)backend.close(1);
  r.drain_ms = ms_since(t0);
  r.backend_writes = counter.writes();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const int chunks_per_rank = args.iters(64);  // 64 x 64 KiB x 8 ranks = 32 MiB burst
  const std::uint64_t total = static_cast<std::uint64_t>(chunks_per_rank) * kRanks * kChunk;

  std::vector<std::byte> chunk(kChunk);
  Rng rng(42);
  for (auto& b : chunk) b = static_cast<std::byte>(rng.next());

  analysis::FigureReport rep("ext_burstbuffer",
                             "N-to-1 checkpoint burst (" + bench::mib(total) +
                                 ", round-robin over " + std::to_string(kRanks) + " regions)",
                             "backend", "see series");

  auto record = [&](const std::string& name, const RunResult& r) {
    rep.add(name, "ingest ms", r.ingest_ms);
    rep.add(name, "drain ms", r.drain_ms);
    rep.add(name, "backend writes", static_cast<double>(r.backend_writes));
    rep.add(name, "ingest GiB/s",
            static_cast<double>(total) / (1_GiB * r.ingest_ms / 1e3));
  };

  // Raw: every forwarded write is one backend op.
  RunResult raw;
  {
    auto counting = std::make_unique<CountingBackend>(std::make_unique<rt::MemBackend>());
    auto* counter = counting.get();
    raw = run_burst(*counting, *counter, chunks_per_rank, chunk);
    record("raw", raw);
  }

  // Sequential aggregation: the round-robin arrival order breaks the window
  // on almost every write.
  {
    auto counting = std::make_unique<CountingBackend>(std::make_unique<rt::MemBackend>());
    auto* counter = counting.get();
    rt::AggregatingBackend agg(std::move(counting), 4_MiB);
    record("aggregating 4MiB", run_burst(agg, *counter, chunks_per_rank, chunk));
  }

  // Burst buffer: each rank's region coalesces into one extent regardless of
  // arrival order; the drain issues one large write per region.
  RunResult bbr;
  {
    auto counting = std::make_unique<CountingBackend>(std::make_unique<rt::MemBackend>());
    auto* counter = counting.get();
    bb::BurstBufferConfig bcfg;
    bcfg.capacity_bytes = 2 * total;  // burst fits: pure absorb-then-drain
    bb::BurstBufferBackend bbuf(std::move(counting), bcfg);
    bbr = run_burst(bbuf, *counter, chunks_per_rank, chunk);
    record("burst buffer", bbr);

    const auto s = bbuf.stats();
    analysis::BurstBufferDiag d;
    d.hit_rate = s.hit_rate();
    d.coalesce_ratio = s.coalesce_ratio();
    d.flushed_bytes = s.flushed_bytes;
    d.cached_high_watermark = s.cached_high_watermark;
    d.capacity_bytes = bbuf.config().capacity_bytes;
    d.stall_ns = s.stall_ns;
    d.evictions = s.evictions;
    d.deferred_errors = s.deferred_errors;
    std::fputs(analysis::burst_buffer_table(d).render().c_str(), stdout);
  }

  analysis::emit(rep);

  std::printf(
      "the burst buffer turned %llu interleaved writes into %llu backend writes\n"
      "(raw: %llu); ingest is acknowledged from cache and the drain proceeds in\n"
      "region-sized runs, which is what a parallel file system wants to see.\n",
      static_cast<unsigned long long>(static_cast<std::uint64_t>(chunks_per_rank) * kRanks),
      static_cast<unsigned long long>(bbr.backend_writes),
      static_cast<unsigned long long>(raw.backend_writes));
  return bbr.backend_writes < raw.backend_writes ? 0 : 1;
}
