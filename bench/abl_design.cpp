// Ablations of the design choices called out in DESIGN.md (paper Sec. IV):
//
//   1. load balancing      — balanced worker batches vs greedy grabbing
//   2. multiplexing depth  — tasks per event-loop pass
//   3. BML pool size       — staging memory budget vs throughput
//   4. cut-through chunk   — forwarding buffer size for the baselines
//
// All at 64 CNs, 1 MiB messages (the paper's heaviest single-pset point).
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto base_cfg = bgp::MachineConfig::intrepid();

  wl::StreamParams p;
  p.cns_per_pset = 64;
  p.iterations = args.iters(400);

  // 1. Load-balancing heuristic.
  {
    analysis::FigureReport rep("abl_load_balance",
                               "Ablation: balanced batches vs greedy dequeue", "CNs");
    for (int ncn : {8, 16, 32, 64}) {
      wl::StreamParams q = p;
      q.cns_per_pset = ncn;
      proto::ForwarderConfig on;
      on.balanced_batches = true;
      proto::ForwarderConfig off;
      off.balanced_batches = false;
      rep.add(std::to_string(ncn), "balanced",
              wl::run_stream(proto::Mechanism::zoid_sched_async, base_cfg, on, q).throughput_mib_s);
      rep.add(std::to_string(ncn), "greedy",
              wl::run_stream(proto::Mechanism::zoid_sched_async, base_cfg, off, q).throughput_mib_s);
    }
    analysis::emit(rep);
  }

  // 2. Multiplexing depth.
  {
    analysis::FigureReport rep("abl_multiplex", "Ablation: event-loop multiplexing depth",
                               "depth");
    for (int d : {1, 2, 4, 8, 16, 32}) {
      proto::ForwarderConfig fc;
      fc.multiplex_depth = d;
      rep.add(std::to_string(d), "ZOID+sched+async",
              wl::run_stream(proto::Mechanism::zoid_sched_async, base_cfg, fc, p).throughput_mib_s);
    }
    analysis::emit(rep);
  }

  // 3. BML pool size.
  {
    analysis::FigureReport rep("abl_bml_size", "Ablation: BML staging-memory budget",
                               "bml");
    for (std::uint64_t mb : {4ull, 16ull, 64ull, 256ull, 1024ull}) {
      proto::ForwarderConfig fc;
      fc.bml_bytes = mb << 20;
      auto r = wl::run_stream(proto::Mechanism::zoid_sched_async, base_cfg, fc, p);
      rep.add(std::to_string(mb) + "MiB", "throughput", r.throughput_mib_s);
      rep.add(std::to_string(mb) + "MiB", "staging blocks", static_cast<double>(r.stats.bml_blocked));
    }
    analysis::emit(rep);
  }

  // 4. Cut-through chunk size for the synchronous baselines.
  {
    analysis::FigureReport rep("abl_chunk", "Ablation: forwarding buffer (chunk) size, ZOID",
                               "chunk");
    for (std::uint64_t kb : {64ull, 128ull, 256ull, 512ull, 1024ull}) {
      auto cfg = base_cfg;
      cfg.forward_chunk_bytes = kb << 10;
      rep.add(std::to_string(kb) + "KiB", "ZOID",
              wl::run_stream(proto::Mechanism::zoid, cfg, {}, p).throughput_mib_s);
    }
    analysis::emit(rep);
  }
  return 0;
}
