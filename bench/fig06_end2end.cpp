// Figure 6: end-to-end I/O forwarding between compute nodes and an analysis
// node — 1 MiB transfers, CIOD vs ZOID vs the maximum-achievable line.
//
// Paper: both sustain at most ~420 MiB/s, only 66% of the ~650 MiB/s bound
// (min of collective and external sustained rates), and degrade as CNs grow.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);
  const auto cfg = bgp::MachineConfig::intrepid();

  analysis::FigureReport rep("fig06", "End-to-end CN -> DA forwarding (1 MiB)", "CNs");
  const double bound = cfg.end_to_end_bound_mib_s();

  for (int ncn : {1, 2, 4, 8, 16, 32, 64}) {
    wl::StreamParams p;
    p.cns_per_pset = ncn;
    p.iterations = args.iters(1000);
    const auto x = std::to_string(ncn);
    rep.add(x, "CIOD", wl::max_of_runs(proto::Mechanism::ciod, cfg, {}, p, args.runs));
    rep.add(x, "ZOID", wl::max_of_runs(proto::Mechanism::zoid, cfg, {}, p, args.runs));
    rep.add(x, "max-achievable", bound);
  }
  rep.add_expected("8", "CIOD", 420);
  rep.add_expected("8", "ZOID", 420);
  rep.add_expected("8", "max-achievable", 650);

  analysis::emit(rep);

  const double peak = *rep.get("4", "ZOID");
  std::printf("ZOID peak efficiency vs bound: %.0f%% (paper: ~66%%)\n", 100.0 * peak / bound);
  return 0;
}
