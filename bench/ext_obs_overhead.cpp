// Extension experiment: observability overhead gate (src/obs/).
//
// The metric registry is always on in the op path — every forwarded op costs
// a handful of sharded counter adds, one histogram record, and one flight-
// recorder entry. DESIGN.md §11 budgets that at <2% of the op. This bench
// measures both sides of the ratio and fails (exit 1) if the budget is
// blown, so CI gates regressions in the instrumentation primitives:
//
//   1. primitive costs — ns per Counter::add, Gauge::set, Histogram::record,
//      FlightRecorder::record, measured over a tight loop, min of reps;
//   2. op cost — per-op wall time of 256 KiB writes driven through the real
//      IonServer + Client (MemBackend, work-queue-async), best of reps;
//   3. share — (per-op instrumentation ns) / (per-op ns), using the op-path
//      mix (3 counters + 2 gauges + 1 histogram + 1 flight record).
//
// Using the best (fastest) op rep makes the gate conservative: the share is
// computed against the cheapest op the machine can produce.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "analysis/report.hpp"
#include "bench_common.hpp"
#include "core/units.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "rt/client.hpp"
#include "rt/server.hpp"

namespace {

using namespace iofwd;

constexpr double kBudgetPct = 2.0;
constexpr std::uint64_t kChunk = 256_KiB;

// Per-op instrumentation mix on the server write path (handle_write +
// observe_op): ops/bytes/filter counters, queue-depth gauge samples, the
// latency histogram, and the flight-recorder entry.
constexpr int kCountersPerOp = 3;
constexpr int kGaugesPerOp = 2;

template <typename F>
double min_ns_per_iter(int reps, int iters, F&& body) {
  double best = 1e18;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) body(i);
    const double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count();
    best = std::min(best, ns / iters);
  }
  return best;
}

double server_ns_per_write(int writes, int reps) {
  double best = 1e18;
  const std::vector<std::byte> chunk(kChunk, std::byte{0x42});
  for (int r = 0; r < reps; ++r) {
    rt::ServerConfig cfg;
    cfg.exec = rt::ExecModel::work_queue_async;
    rt::IonServer server(std::make_unique<rt::MemBackend>(), cfg);
    auto [a, b] = rt::InProcTransport::make_pair();
    server.serve(std::move(a));
    rt::Client client(std::move(b));
    (void)client.open(1, "bench");
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < writes; ++i) {
      (void)client.write(1, static_cast<std::uint64_t>(i) * kChunk, chunk);
    }
    (void)client.fsync(1);  // barrier: async acks land before the clock stops
    const double ns =
        std::chrono::duration<double, std::nano>(std::chrono::steady_clock::now() - t0).count();
    (void)client.close(1);
    server.stop();
    best = std::min(best, ns / writes);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = bench::BenchArgs::parse(argc, argv);
  const int prim_iters = args.quick ? 200000 : 2000000;
  const int writes = args.iters(2000);
  const int reps = args.quick ? 2 : 3;

  obs::MetricRegistry reg;
  obs::Counter& ctr = reg.counter("bench.ctr");
  obs::Gauge& gauge = reg.gauge("bench.gauge");
  obs::Histogram& hist = reg.histogram("bench.hist");
  obs::FlightRecorder fr(256);

  const double ctr_ns = min_ns_per_iter(reps, prim_iters, [&](int) { ctr.inc(); });
  const double gauge_ns =
      min_ns_per_iter(reps, prim_iters, [&](int i) { gauge.set(i); });
  const double hist_ns = min_ns_per_iter(
      reps, prim_iters, [&](int i) { hist.record(static_cast<std::uint64_t>(i) & 0xffff); });
  const double fr_ns = min_ns_per_iter(
      reps, prim_iters / 10, [&](int i) { fr.record("write", i, kChunk, 100, 0); });

  const double op_ns = server_ns_per_write(writes, reps);
  const double inst_ns =
      kCountersPerOp * ctr_ns + kGaugesPerOp * gauge_ns + hist_ns + fr_ns;
  const double share_pct = 100.0 * inst_ns / op_ns;
  const double gib_s = static_cast<double>(kChunk) / op_ns;  // bytes/ns == GiB-ish/s

  analysis::DiagTable t("ext_obs_overhead: registry cost on the 256 KiB write path");
  t.add("Counter::add", ctr_ns, "ns/op, sharded relaxed fetch_add");
  t.add("Gauge::set", gauge_ns, "ns/op");
  t.add("Histogram::record", hist_ns, "ns/op, log2 bucket + sum + max");
  t.add("FlightRecorder::record", fr_ns, "ns/op, mutex + ring push");
  t.add("server write op", op_ns, "ns/op, best of reps, MemBackend");
  t.add("server write throughput", gib_s, "GB/s equivalent");
  t.add("instrumentation / op", inst_ns,
        "ns: 3 counters + 2 gauges + histogram + flight record");
  t.add("overhead share", share_pct, "% of op, budget < 2%");
  std::fputs(t.render().c_str(), stdout);

  if (share_pct >= kBudgetPct) {
    std::fprintf(stderr, "FAIL: observability overhead %.3f%% >= %.1f%% budget\n",
                 share_pct, kBudgetPct);
    return 1;
  }
  std::printf("PASS: observability overhead %.3f%% < %.1f%% budget\n", share_pct, kBudgetPct);
  return 0;
}
