// Figure 12: weak scaling of memory-to-memory forwarding from 256 to 1024
// compute nodes (4/8/16 IONs), streaming to 20 DA-node sinks with the MxN
// connection distribution.
//
// Paper: async staging + scheduling improves over CIOD by 53/43/47% and
// over ZOID by 33/25/34% at 256/512/1024 nodes; absolute throughput grows
// with node count because every added pset brings its own ION and tree.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace iofwd;
  const auto args = bench::BenchArgs::parse(argc, argv);

  analysis::FigureReport rep("fig12", "Weak scaling CN -> 20 DA sinks (1 MiB, MxN)",
                             "nodes");
  proto::ForwarderConfig fc;
  fc.workers = 4;

  for (int nodes : {256, 512, 1024}) {
    auto cfg = bgp::MachineConfig::intrepid();
    cfg.num_psets = nodes / cfg.cns_per_pset;
    cfg.num_da_nodes = 20;
    wl::StreamParams p;
    p.cns_per_pset = cfg.cns_per_pset;
    p.iterations = args.iters(300);
    p.distribute_das = true;
    for (auto m : {proto::Mechanism::ciod, proto::Mechanism::zoid,
                   proto::Mechanism::zoid_sched_async}) {
      rep.add(std::to_string(nodes), proto::to_string(m),
              wl::max_of_runs(m, cfg, fc, p, args.runs));
    }
  }
  // Paper anchors (improvement percentages applied to one ION's ladder,
  // scaled by ION count): async ~ 618 MiB/s per pset.
  rep.add_expected("256", "ZOID+sched+async", 618 * 4);
  rep.add_expected("512", "ZOID+sched+async", 618 * 8);
  rep.add_expected("1024", "ZOID+sched+async", 618 * 16);

  analysis::emit(rep);

  for (int nodes : {256, 512, 1024}) {
    const auto x = std::to_string(nodes);
    const double ciod = *rep.get(x, "CIOD");
    const double zoid = *rep.get(x, "ZOID");
    const double async = *rep.get(x, "ZOID+sched+async");
    std::printf("%4d nodes: async vs CIOD %+.0f%%, vs ZOID %+.0f%% (paper: +53/43/47%% and +33/25/34%%)\n",
                nodes, 100 * (async / ciod - 1), 100 * (async / zoid - 1));
  }
  return 0;
}
